"""Thin HTTP front-end for :class:`~repro.service.QueryService`.

Pure stdlib (:mod:`http.server`), JSON in / JSON out.  The threading server
leans on the service's own locks: budget admission is atomic, identical
concurrent queries coalesce, and every answer is a structured JSON object —
a refusal is a *response*, never an exception escaping into the log.

Every response body is built by :mod:`repro.service.wire` (the v1 envelope:
``"api": 1`` plus a structured ``error`` object), so this module and the
async front-end cannot drift apart on document shapes.

Protocol
--------
``GET /health``
    ``{"api": 1, "status": "ok", "datasets": [...names...]}`` — liveness.
``GET /datasets``
    Per-dataset budget snapshots (including each dataset's ``kinds``
    allowlist and ``draining`` flag) plus cache counters (the
    :meth:`QueryService.stats` document).
``GET /kinds``
    The estimator-spec registry catalogue: every servable kind with its
    typed parameter schema, reservation factor, minimum record count and
    result shape — the authoritative list a client should consult before
    querying.  An unknown ``kind`` in a query is answered with a structured
    400 whose body carries the same list (``error.code = "unknown_kind"``).
``GET /metrics``
    Prometheus text exposition (version 0.0.4): the ``stats()`` counters
    plus per-kind / per-outcome request-latency histograms and — when
    observability is on — per-kind / per-analyst epsilon-spent gauges.
``GET /debug/traces`` / ``GET /debug/traces/<id>``
    Recent request traces from the bounded in-memory ring, newest first
    (404 ``tracing_disabled`` without an ``[observability]`` tracer).  A
    traced ``POST /query`` response echoes its ``"trace"`` id — minted per
    request, or honoured from an ``X-Repro-Trace-Id`` header — for lookup
    here or via ``repro trace <id>``.
``POST /query``
    Body: a query object —
    ``{"dataset": ..., "kind": ..., "epsilon": ..., "beta": ...,``
    ``"params": {"levels": [...]}, "analyst": ...}`` — or
    ``{"queries": [...]}`` with a list of such objects, which is answered
    as one batch through the service's engine-pool fan-out.  (Kind
    parameters live under ``params`` only; the legacy top-level ``levels``
    alias is gone with its deprecation window.)  Response: the answer
    document (or ``{"answers": [...]}``).  HTTP status mirrors the
    outcome: 200 for ``ok``/``failed`` (a failed propose-test-release is a
    valid, budgeted DP outcome), 403 for budget refusals, 404 for unknown
    datasets, 400 for malformed requests, 429 for per-analyst/per-kind
    rate limits (refused *before* admission: the budget ledger is
    untouched), 503 ``coordinator_unavailable`` when the dataset draws on
    a cluster joint budget whose coordinator is unreachable.  Batch
    responses are always 200; inspect each answer's ``status``.
``POST /datasets``
    Registration (only when the server was built with
    ``allow_register=True``): ``{"name": ..., "values": [...],``
    ``"budget": ..., "analyst_budgets": {...}}`` → 201.
``GET /admin/state`` / ``POST /admin/reload`` / ``POST /admin/drain``
    The live control plane (:class:`~repro.service.admin.AdminController`),
    authenticated with ``Authorization: Bearer <token>`` or
    ``X-Admin-Token``; 403 ``admin_disabled`` when no controller (or no
    secret) is configured.

Hardening: a missing, non-integer or negative ``Content-Length`` is a clean
400; a declared body beyond ``max_body`` bytes is answered 413 without
reading it; a client that disconnects mid-request or mid-response is
swallowed silently and counted in the ``frontend`` section of
``GET /datasets`` — a refusal is a response and a disconnect is a counter,
never a traceback in the server log.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ReproError
from repro.obs import span as obs_span
from repro.service import wire
from repro.service.executor import QueryService
from repro.service.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.service.queries import InvalidQueryError

__all__ = ["DEFAULT_MAX_BODY", "ServiceServer", "make_server", "serve_forever"]

#: Default cap on request body size; oversized posts are answered with 413
#: instead of being read unbounded into memory.
DEFAULT_MAX_BODY = 1 << 20

#: A peer that went away mid-request or mid-response.  Never an error worth a
#: log line, let alone a traceback: the connection is simply over.
_DISCONNECT_ERRORS = (
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
    TimeoutError,
)


class _ClientDisconnect(Exception):
    """The client hung up before the request could be answered."""


class _PayloadTooLarge(Exception):
    """The declared request body exceeds the server's size cap."""

    def __init__(self, length: int):
        super().__init__(str(length))
        self.length = length


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the service instance hangs off the server object."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    def _send_json(
        self,
        code: int,
        payload: Dict[str, Any],
        *,
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(code, body, "application/json", headers)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        self._send_body(code, text.encode("utf-8"), content_type, None)

    def _send_body(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: Optional[Mapping[str, str]],
    ) -> None:
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            if self.close_connection:
                # Announce the teardown (set by the bad-framing paths before
                # responding) so keep-alive clients don't pipeline into a FIN.
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except _DISCONNECT_ERRORS:
            # The client went away mid-response.  Writing anything more
            # (including a 500) to the dead socket would only raise again and
            # leak a traceback into the log; swallow, count, hang up.
            self.server.count_disconnect()
            self.close_connection = True

    def _read_json(self, *, allow_empty: bool = False) -> Any:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except (TypeError, ValueError):
            # Unknown framing: the body (if any) stays unread, so keep-alive
            # cannot continue on this connection.
            self.close_connection = True
            raise InvalidQueryError(
                f"Content-Length must be an integer, got {raw_length!r}"
            ) from None
        if length < 0:
            self.close_connection = True
            raise InvalidQueryError(f"Content-Length must be >= 0, got {length}")
        max_body = self.server.max_body
        if max_body is not None and length > max_body:
            raise _PayloadTooLarge(length)
        try:
            raw = self.rfile.read(length) if length else b""
        except _DISCONNECT_ERRORS as exc:
            raise _ClientDisconnect from exc
        if len(raw) < length:
            # The client promised `length` bytes and hung up early.
            raise _ClientDisconnect
        if not raw:
            if allow_empty:
                return None
            raise InvalidQueryError("request body is empty")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidQueryError(f"request body is not valid JSON: {exc}") from exc

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if self.server.quiet:
            return
        super().log_message(format, *args)

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        try:
            if self.path == "/health":
                self._send_json(200, wire.health_document(self.server.service))
            elif self.path == "/datasets":
                self._send_json(
                    200,
                    wire.stats_document(
                        self.server.service, frontend=self.server.frontend_stats()
                    ),
                )
            elif self.path == "/kinds":
                self._send_json(200, wire.kinds_document(self.server.service))
            elif self.path == "/metrics":
                self._send_text(
                    200,
                    render_prometheus(
                        self.server.service,
                        frontend=self.server.frontend_stats(),
                        limiter=self.server.limiter,
                    ),
                    PROMETHEUS_CONTENT_TYPE,
                )
            elif self.path == "/debug/traces" or self.path.startswith("/debug/traces/"):
                self._handle_traces()
            elif self.path.startswith("/admin"):
                self._handle_admin("GET")
            else:
                self._send_json(404, wire.unknown_path("GET", self.path))
        except _DISCONNECT_ERRORS:
            self.server.count_disconnect()
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            self._send_json(500, wire.internal_error(exc))

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        try:
            if self.path == "/query":
                self._handle_query()
            elif self.path == "/datasets":
                self._handle_register()
            elif self.path.startswith("/admin"):
                self._handle_admin("POST")
            else:
                self._send_json(404, wire.unknown_path("POST", self.path))
        except _ClientDisconnect:
            self.server.count_disconnect()
            self.close_connection = True
        except _PayloadTooLarge as exc:
            # The body was never read, so the connection cannot be reused for
            # keep-alive framing; announce the close, answer, hang up.
            self.close_connection = True
            self._send_json(413, wire.too_large(exc.length, self.server.max_body))
        except _DISCONNECT_ERRORS:
            self.server.count_disconnect()
            self.close_connection = True
        except ReproError as exc:
            self._send_json(400, wire.invalid_request(exc))
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            self._send_json(500, wire.internal_error(exc))

    def _check_rate_limit(self, request) -> Optional[Any]:
        """The pre-admission QoS gate: a decision means *refuse with 429*.

        Runs before any budget or cache access, so a 429 costs the ledger
        nothing; the refusal is still visible in the latency histogram under
        the ``rate_limited`` outcome (at zero recorded latency).
        """
        limiter = self.server.limiter
        if limiter is None:
            return None
        decision = limiter.check(request.analyst, request.query.kind)
        if decision is not None:
            self.server.service.metrics.observe(
                request.query.kind, "rate_limited", 0.0
            )
            wire.audit_rate_limit(self.server.service, request, decision)
        return decision

    def _handle_query(self) -> None:
        """Open (and always finish) the per-request trace around the answer path.

        The trace is finished *before* the response bytes leave, so a client
        that reads the echoed trace id off the answer can immediately inspect
        it via ``GET /debug/traces/<id>`` — there is no window where the
        answer is visible but its trace is not.
        """
        tracer = self.server.service.tracer
        trace = None
        if tracer is not None:
            trace = tracer.start(
                self.headers.get("X-Repro-Trace-Id"), frontend="threaded"
            )
        headers: Optional[Dict[str, str]] = None
        try:
            status, document, headers = self._answer_query(trace)
        except ReproError as exc:
            # Answered here (not in do_POST) so the 400 document can echo the
            # trace id like every other traced response.
            if trace is not None:
                trace.annotate(status="invalid")
            status, document = 400, wire.with_trace(
                wire.invalid_request(exc),
                trace.trace_id if trace is not None else None,
            )
        finally:
            if tracer is not None and trace is not None:
                tracer.finish(trace)
        self._send_json(status, document, headers=headers)

    def _answer_query(self, trace) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        service = self.server.service
        trace_id = trace.trace_id if trace is not None else None
        with obs_span(trace, "read_body"):
            payload = self._read_json()
        if isinstance(payload, dict) and "queries" in payload:
            entries = payload["queries"]
            if not isinstance(entries, list):
                raise InvalidQueryError("'queries' must be a list of query objects")
            with obs_span(trace, "parse", queries=len(entries)):
                parsed = [wire.parse_request(entry) for entry in entries]
            if trace is not None:
                trace.annotate(queries=len(parsed))
            docs: List[Optional[Dict[str, Any]]] = [None] * len(parsed)
            admitted = []
            with obs_span(trace, "rate_check"):
                for index, request in enumerate(parsed):
                    decision = self._check_rate_limit(request)
                    if decision is not None:
                        docs[index] = wire.rate_limited_answer(request, decision)
                    else:
                        admitted.append(index)
            answers = service.submit_many(
                [parsed[index] for index in admitted], trace=trace
            )
            with obs_span(trace, "serialize"):
                for index, answer in zip(admitted, answers):
                    docs[index] = wire.answer_document(answer)
                document = wire.with_trace(wire.answers_document(docs), trace_id)
            return 200, document, None
        with obs_span(trace, "parse"):
            request = wire.parse_request(payload)
        if trace is not None:
            trace.annotate(
                dataset=request.dataset,
                kind=request.query.kind,
                analyst=request.analyst,
            )
        with obs_span(trace, "rate_check") as info:
            decision = self._check_rate_limit(request)
            info["limited"] = decision is not None
        if decision is not None:
            if trace is not None:
                trace.annotate(status="rate_limited")
            return (
                429,
                wire.with_trace(wire.rate_limited_answer(request, decision), trace_id),
                {"Retry-After": wire.retry_after_header(decision)},
            )
        answer = service.submit(request, trace=trace)
        if trace is not None:
            trace.annotate(status=answer.status, cached=answer.cached)
        with obs_span(trace, "serialize"):
            document = wire.with_trace(wire.answer_document(answer), trace_id)
        return wire.answer_status_code(answer), document, None

    def _handle_traces(self) -> None:
        tracer = self.server.service.tracer
        if tracer is None:
            self._send_json(404, wire.tracing_disabled())
            return
        if self.path == "/debug/traces":
            self._send_json(200, wire.traces_document(tracer))
            return
        trace_id = self.path[len("/debug/traces/"):]
        code, doc = wire.trace_document(tracer, trace_id)
        self._send_json(code, doc)

    def _handle_register(self) -> None:
        if not self.server.allow_register:
            self._send_json(403, wire.registration_disabled())
            return
        code, doc = wire.register_response(self.server.service, self._read_json())
        self._send_json(code, doc)

    def _handle_admin(self, method: str) -> None:
        admin = self.server.admin
        if admin is None:
            if method == "POST":
                self._read_json(allow_empty=True)  # keep keep-alive framing
            self._send_json(403, wire.admin_disabled())
            return
        token = wire.bearer_token(
            self.headers.get("Authorization"), self.headers.get("X-Admin-Token")
        )
        payload = self._read_json(allow_empty=True) if method == "POST" else None
        code, doc = admin.handle(method, self.path, payload, token)
        self._send_json(code, doc)


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`QueryService`."""

    daemon_threads = True
    # The socketserver default backlog of 5 resets connections under fan-in
    # (hundreds of clients connecting at once); queue them instead.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        service: QueryService,
        *,
        allow_register: bool = False,
        quiet: bool = False,
        max_body: Optional[int] = DEFAULT_MAX_BODY,
        limiter: Optional[Any] = None,
        admin: Optional[Any] = None,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.allow_register = allow_register
        self.quiet = quiet
        self.max_body = max_body
        self.limiter = limiter
        self.admin = admin
        self._stats_lock = threading.Lock()
        self._disconnects = 0

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def count_disconnect(self) -> None:
        with self._stats_lock:
            self._disconnects += 1

    @property
    def disconnects(self) -> int:
        with self._stats_lock:
            return self._disconnects

    def frontend_stats(self) -> Dict[str, Any]:
        """Front-end counters reported under ``frontend`` in ``GET /datasets``."""
        return {
            "frontend": "threaded",
            "disconnects": self.disconnects,
            "max_body": self.max_body,
        }

    def handle_error(self, request, client_address) -> None:
        """Keep the log traceback-free for socket-level failures.

        The stdlib default prints a full traceback for *any* exception that
        escapes the handler — including a client disconnecting between our
        response and the connection teardown, which is routine under load.
        """
        exc = sys.exc_info()[1]
        if isinstance(exc, _DISCONNECT_ERRORS):
            self.count_disconnect()
            return
        print(
            f"error handling request from {client_address}: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
            flush=True,
        )


def make_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    allow_register: bool = False,
    quiet: bool = False,
    max_body: Optional[int] = DEFAULT_MAX_BODY,
    limiter: Optional[Any] = None,
    admin: Optional[Any] = None,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` (``port=0`` picks an ephemeral port)."""
    return ServiceServer(
        (host, port), service,
        allow_register=allow_register, quiet=quiet, max_body=max_body,
        limiter=limiter, admin=admin,
    )


def serve_forever(server: ServiceServer) -> threading.Thread:
    """Run ``server`` on a daemon thread; returns the (started) thread."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread
