"""Dataset registry and budget accounting for the private-query service.

Each registered dataset carries a :class:`BudgetManager`: a total privacy
budget (and optional per-analyst sub-budgets) layered on
:class:`~repro.accounting.PrivacyLedger`.  Admission is a two-phase
*reserve → commit* protocol, atomic under the manager's lock:

* :meth:`BudgetManager.reserve` checks ``spent + reserved + requested``
  against every applicable cap and either admits the query (holding the
  reservation so concurrent queries cannot jointly oversubscribe) or raises
  :class:`~repro.exceptions.BudgetExceededError` **leaving the ledger
  unchanged** — a refused query costs nothing and observes nothing.
* :meth:`BudgetManager.commit` releases the reservation and records the
  epsilon the estimator *actually* spent (measured from its own per-query
  ledger; reservations are exact upper bounds, see
  :data:`repro.service.queries.QUERY_KINDS`).  :meth:`BudgetManager.cancel`
  releases a reservation that never executed (e.g. an infrastructure error
  before the estimator touched the data).

The admission decision depends only on public parameters (query kind,
epsilon, dataset size) — never on the data — so the accept/refuse pattern
itself leaks nothing.

Datasets register through :class:`DatasetRegistry`.  With ``share=True`` the
data is copied once into a :class:`~repro.engine.SharedArray` segment, so
fanning queries out across an :class:`~repro.engine.EnginePool` ships only
the segment name instead of pickling the array into every worker.

Registration is also where dataset **sketches** are paid for: unless
``sketches=False``, a 1-D dataset is stored as a
:class:`~repro.dataview.DatasetView` whose sketch cache is materialised once
from the union of ``EstimatorSpec.needs`` over the kinds the dataset serves.
Every cold query then reads the registration-time sorted/absolute-sorted
copies instead of re-deriving them, and ``share=True`` puts the sketches in
shared memory alongside the data so pool workers attach rather than
recompute.  The memory cost is visible in ``to_json()`` (and hence
``GET /datasets`` / ``stats()``) under ``"sketches"``.

**Joint budget groups** extend the same semantics across datasets: a group
created with :meth:`DatasetRegistry.create_group` owns one
:class:`BudgetManager`, and every dataset registered with ``group=`` draws
from that single cap.  Reserve/commit stays unchanged — it simply runs
against the shared manager — so exhausting the joint cap refuses queries on
*every* member dataset, with the group ledger untouched by the refusals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.accounting import PrivacyLedger, validate_epsilon
from repro.dataview import SKETCH_KINDS, DatasetView
from repro.engine import SharedArray, share_view, unlink_all, view_segments
from repro.exceptions import BudgetExceededError, DomainError, InsufficientDataError

__all__ = [
    "BudgetManager",
    "RemoteBudgetManager",
    "Reservation",
    "DatasetRegistry",
    "RegisteredDataset",
    "UnknownDatasetError",
]


class UnknownDatasetError(DomainError):
    """A query named a dataset that is not registered."""


@dataclass(frozen=True)
class Reservation:
    """An admitted-but-uncommitted claim on a budget manager.

    Hand it back to exactly one of :meth:`BudgetManager.commit` /
    :meth:`BudgetManager.cancel`.
    """

    amount: float
    analyst: Optional[str]
    token: int


class BudgetManager:
    """Atomic check-and-spend over one dataset's total (and analyst) budgets.

    Parameters
    ----------
    capacity:
        Total epsilon the dataset may ever spend.
    analyst_budgets:
        Optional per-analyst caps.  An analyst with a cap draws from both its
        own sub-budget and the total; analysts without an entry are bounded
        only by the total.
    """

    #: Relative admission tolerance (scaled by each cap; see ``_slack``).
    _RTOL = 1e-9

    def __init__(
        self,
        capacity: float,
        *,
        analyst_budgets: Optional[Mapping[str, float]] = None,
    ):
        self._capacity = validate_epsilon(capacity, name="capacity")
        self._ledger = PrivacyLedger()  # uncapped: the manager enforces caps
        self._reserved = 0.0
        self._analyst_caps: Dict[str, float] = {}
        self._analyst_spent: Dict[str, float] = {}
        self._analyst_reserved: Dict[str, float] = {}
        for name, cap in dict(analyst_budgets or {}).items():
            self._analyst_caps[str(name)] = validate_epsilon(
                cap, name=f"analyst budget {name!r}"
            )
            self._analyst_spent[str(name)] = 0.0
            self._analyst_reserved[str(name)] = 0.0
        self._lock = threading.Lock()
        self._tokens = 0
        # Admission slack for floating-point round-off.  The slack must scale
        # with the capacity: after thousands of small commits the accumulated
        # summation error grows like ``n * ulp(capacity)``, so a fixed
        # absolute tolerance would wrongly refuse (or, for tiny capacities,
        # wrongly admit) the final exactly-fitting query.  ``max(capacity, 1)``
        # keeps a sane absolute floor for sub-unit budgets.
        self._slack = self._RTOL * max(self._capacity, 1.0)

    # -- introspection -----------------------------------------------------
    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def ledger(self) -> PrivacyLedger:
        """The underlying ledger of committed spends (one entry per release)."""
        return self._ledger

    @property
    def spent(self) -> float:
        """Total epsilon committed so far."""
        return self._ledger.total_epsilon

    @property
    def reserved(self) -> float:
        """Epsilon held by in-flight (admitted, not yet committed) queries."""
        with self._lock:
            return self._reserved

    @property
    def remaining(self) -> float:
        """Budget still grantable: ``capacity - spent - reserved``."""
        with self._lock:
            return max(self._capacity - self._ledger.total_epsilon - self._reserved, 0.0)

    def analyst_remaining(self, analyst: str) -> Optional[float]:
        """Remaining sub-budget for ``analyst`` (``None`` when uncapped)."""
        with self._lock:
            if analyst not in self._analyst_caps:
                return None
            return max(
                self._analyst_caps[analyst]
                - self._analyst_spent[analyst]
                - self._analyst_reserved[analyst],
                0.0,
            )

    def analyst_budgets(self) -> Dict[str, Dict[str, float]]:
        """Snapshot of every capped analyst's cap / spent / reserved."""
        with self._lock:
            return {
                name: {
                    "capacity": self._analyst_caps[name],
                    "spent": self._analyst_spent[name],
                    "reserved": self._analyst_reserved[name],
                }
                for name in self._analyst_caps
            }

    def rotate_analyst_budgets(
        self, analyst_budgets: Optional[Mapping[str, float]]
    ) -> None:
        """Replace the per-analyst caps, preserving spend/reservation history.

        The control-plane primitive behind a live ``analyst_budgets`` config
        change: raising a cap grants headroom immediately, lowering one below
        the analyst's committed spend refuses their next query without ever
        forgiving the historical spend, and dropping an analyst lifts their
        sub-cap (the total budget still binds).  In-flight reservations of a
        dropped analyst stay counted against the total and release cleanly.
        """
        budgets = {
            str(name): validate_epsilon(cap, name=f"analyst budget {name!r}")
            for name, cap in dict(analyst_budgets or {}).items()
        }
        with self._lock:
            self._analyst_caps = budgets
            # Spent/reserved history outlives cap rotation on purpose: a
            # re-added analyst must not restart from zero spend.
            for name in budgets:
                self._analyst_spent.setdefault(name, 0.0)
                self._analyst_reserved.setdefault(name, 0.0)

    # -- the two-phase protocol --------------------------------------------
    def _admission_error(self, amount: float, analyst: Optional[str]) -> Optional[str]:
        """The refusal message for a claim of ``amount``, or ``None`` if it fits.

        Caller must hold ``self._lock``.  The check allows ``_slack`` epsilon
        of capacity-relative float round-off on each cap.
        """
        spent = self._ledger.total_epsilon
        if spent + self._reserved + amount > self._capacity + self._slack:
            return (
                f"query needs {amount:.6g} epsilon but only "
                f"{max(self._capacity - spent - self._reserved, 0.0):.6g} of the "
                f"total budget {self._capacity:.6g} remains"
            )
        if analyst is not None and analyst in self._analyst_caps:
            cap = self._analyst_caps[analyst]
            used = self._analyst_spent[analyst] + self._analyst_reserved[analyst]
            if used + amount > cap + self._RTOL * max(cap, 1.0):
                return (
                    f"analyst {analyst!r} needs {amount:.6g} epsilon but only "
                    f"{max(cap - used, 0.0):.6g} of their sub-budget {cap:.6g} remains"
                )
        return None

    def peek(self, amount: float, *, analyst: Optional[str] = None) -> Optional[str]:
        """Would a claim of ``amount`` be refused right now?

        Returns the refusal message (without reserving anything) or ``None``
        when the claim would currently be admitted.  This is the zero-side-
        effect admission probe the async front-end uses to answer sure
        refusals directly on the event loop; it is a point-in-time answer,
        exactly what :meth:`reserve` would decide at this instant.
        """
        amount = validate_epsilon(amount, name="reservation")
        with self._lock:
            return self._admission_error(amount, analyst)

    def reserve(self, amount: float, *, analyst: Optional[str] = None) -> Reservation:
        """Atomically admit a claim of ``amount`` epsilon or refuse it.

        Raises :class:`~repro.exceptions.BudgetExceededError` without any
        side effect when the claim does not fit the total budget or the
        analyst's sub-budget.
        """
        amount = validate_epsilon(amount, name="reservation")
        with self._lock:
            error = self._admission_error(amount, analyst)
            if error is not None:
                raise BudgetExceededError(error)
            if analyst is not None and analyst in self._analyst_caps:
                self._analyst_reserved[analyst] += amount
            self._reserved += amount
            self._tokens += 1
            return Reservation(amount=amount, analyst=analyst, token=self._tokens)

    def commit(self, reservation: Reservation, actual: float, *, label: str) -> float:
        """Release ``reservation`` and record the measured spend ``actual``.

        ``actual`` may be below the reservation (the usual case: amplified
        probes charge less than their nominal epsilon) and the difference is
        returned to the pool; it is recorded truthfully even in the
        (model-breaking) event it exceeds the reservation.  A zero ``actual``
        — an estimator that failed before touching any mechanism — releases
        the reservation without a ledger entry.
        """
        actual = float(actual)
        if actual < 0.0 or not np.isfinite(actual):
            raise DomainError(f"actual spend must be finite and >= 0, got {actual}")
        with self._lock:
            self._release(reservation)
            if actual > 0.0:
                self._ledger.charge(label, actual)
                # Keyed on the history dict, not the live caps: a cap rotated
                # away mid-flight must still see its spend recorded, so a
                # later re-added cap accounts the analyst exactly.
                if reservation.analyst is not None and reservation.analyst in self._analyst_spent:
                    self._analyst_spent[reservation.analyst] += actual
        return actual

    def cancel(self, reservation: Reservation) -> None:
        """Release ``reservation`` without recording any spend."""
        with self._lock:
            self._release(reservation)

    def _release(self, reservation: Reservation) -> None:
        """Drop a reservation's hold. Caller must hold ``self._lock``."""
        self._reserved = max(self._reserved - reservation.amount, 0.0)
        if reservation.analyst is not None and reservation.analyst in self._analyst_reserved:
            self._analyst_reserved[reservation.analyst] = max(
                self._analyst_reserved[reservation.analyst] - reservation.amount, 0.0
            )

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the budget state."""
        with self._lock:
            spent = self._ledger.total_epsilon
            return {
                "capacity": self._capacity,
                "spent": spent,
                "reserved": self._reserved,
                "remaining": max(self._capacity - spent - self._reserved, 0.0),
                "releases": len(self._ledger),
                "analysts": {
                    name: {
                        "capacity": self._analyst_caps[name],
                        "spent": self._analyst_spent[name],
                        "remaining": max(
                            self._analyst_caps[name]
                            - self._analyst_spent[name]
                            - self._analyst_reserved[name],
                            0.0,
                        ),
                    }
                    for name in self._analyst_caps
                },
            }


class RemoteBudgetManager:
    """A coordinator-owned budget, speaking the :class:`BudgetManager` contract.

    In a ``repro.cluster`` deployment every joint budget group spans
    shards, so its ledger lives in the coordinator process and each shard
    holds this proxy instead of a local manager.  The proxy satisfies the
    exact surface the executor, admin plane and metrics renderer consume —
    ``peek`` / ``reserve`` / ``commit`` / ``cancel``, the introspection
    properties, ``analyst_*`` and ``to_json`` — by delegating each call to
    one RPC round-trip (see :mod:`repro.cluster.coordinator`).  Semantics
    are those of the coordinator's own :class:`BudgetManager` under its
    lock, which is what makes reserve→commit atomic cluster-wide.

    Transport failures surface as
    :class:`~repro.exceptions.CoordinatorUnavailableError`; the executor
    maps them to structured ``coordinator_unavailable`` refusals rather
    than ever falling back to a shard-local ledger (which would silently
    double-count joint spend).

    The ``client`` is duck-typed (anything with ``call(op, **fields)``,
    usually :class:`repro.cluster.rpc.CoordinatorClient`) so this module
    never imports ``repro.cluster``.
    """

    def __init__(
        self,
        owner: str,
        client: Any,
        *,
        capacity: float,
        analyst_budgets: Optional[Mapping[str, float]] = None,
    ):
        self._owner = str(owner)
        self._client = client
        self._capacity = validate_epsilon(capacity, name="capacity")
        caps = {
            str(name): validate_epsilon(cap, name=f"analyst budget {name!r}")
            for name, cap in dict(analyst_budgets or {}).items()
        }
        client.call(
            "create",
            owner=self._owner,
            capacity=self._capacity,
            analyst_budgets=caps,
        )

    # -- introspection -----------------------------------------------------
    @property
    def owner(self) -> str:
        """The coordinator-side ledger name (e.g. ``group:pilot``)."""
        return self._owner

    @property
    def capacity(self) -> float:
        return self._capacity

    def _snapshot(self) -> Dict[str, Any]:
        return self._client.call("snapshot", owner=self._owner)["budget"]

    @property
    def spent(self) -> float:
        return float(self._snapshot()["spent"])

    @property
    def reserved(self) -> float:
        return float(self._snapshot()["reserved"])

    @property
    def remaining(self) -> float:
        return float(self._snapshot()["remaining"])

    def analyst_remaining(self, analyst: str) -> Optional[float]:
        response = self._client.call(
            "analyst_remaining", owner=self._owner, analyst=str(analyst)
        )
        remaining = response.get("remaining")
        return None if remaining is None else float(remaining)

    def analyst_budgets(self) -> Dict[str, Dict[str, float]]:
        snapshot = self._snapshot()["analysts"]
        return {
            name: {
                "capacity": float(entry["capacity"]),
                "spent": float(entry["spent"]),
                "reserved": float(
                    entry.get(
                        "reserved",
                        entry["capacity"] - entry["spent"] - entry["remaining"],
                    )
                ),
            }
            for name, entry in snapshot.items()
        }

    def rotate_analyst_budgets(
        self, analyst_budgets: Optional[Mapping[str, float]]
    ) -> None:
        caps = {
            str(name): validate_epsilon(cap, name=f"analyst budget {name!r}")
            for name, cap in dict(analyst_budgets or {}).items()
        }
        self._client.call("rotate", owner=self._owner, analyst_budgets=caps)

    # -- the two-phase protocol --------------------------------------------
    def peek(self, amount: float, *, analyst: Optional[str] = None) -> Optional[str]:
        amount = validate_epsilon(amount, name="reservation")
        response = self._client.call(
            "peek", owner=self._owner, amount=amount, analyst=analyst
        )
        return response.get("refusal")

    def reserve(self, amount: float, *, analyst: Optional[str] = None) -> Reservation:
        amount = validate_epsilon(amount, name="reservation")
        response = self._client.call(
            "reserve", owner=self._owner, amount=amount, analyst=analyst
        )
        return Reservation(amount=amount, analyst=analyst, token=int(response["token"]))

    def commit(self, reservation: Reservation, actual: float, *, label: str) -> float:
        response = self._client.call(
            "commit", token=reservation.token, actual=float(actual), label=str(label)
        )
        return float(response["charged"])

    def cancel(self, reservation: Reservation) -> None:
        self._client.call("cancel", token=reservation.token)

    def to_json(self) -> Dict[str, Any]:
        return self._snapshot()


@dataclass
class RegisteredDataset:
    """One dataset under service management.

    Attributes
    ----------
    name:
        Registry key (the name clients address queries to).
    data:
        The records: a 1-D array for univariate statistics or an ``(n, d)``
        array for the multivariate estimators.  Usually a
        :class:`~repro.dataview.DatasetView` carrying registration-time
        sketches (``sketches=True``); the view's base — or ``data`` itself
        under ``sketches=False`` — may be a
        :class:`~repro.engine.SharedArray` (``share=True`` registration).
    budget:
        The dataset's :class:`BudgetManager` — private to the dataset, or
        the shared manager of its joint budget group.
    group:
        Name of the joint budget group the dataset belongs to, or ``None``
        when it has a budget of its own.
    kinds:
        Optional allowlist of the registered estimator kinds this dataset
        serves (``None`` = every registered kind); enforced by the planner
        before any budget is touched.
    draining:
        When set (via :meth:`DatasetRegistry.set_draining`, usually through
        the admin surface) the service stops admitting fresh releases on
        this dataset — cached answers keep being served — so it can be
        removed without cutting off clients mid-flight.
    """

    name: str
    data: Any
    budget: BudgetManager
    group: Optional[str] = None
    kinds: Optional[Tuple[str, ...]] = None
    draining: bool = False

    @property
    def records(self) -> int:
        return int(len(self.data))

    @property
    def dimension(self) -> int:
        shape = self.data.shape
        return int(shape[1]) if len(shape) > 1 else 1

    @property
    def view(self) -> Optional[DatasetView]:
        """The dataset's :class:`DatasetView`, or ``None`` (``sketches=False``)."""
        return self.data if isinstance(self.data, DatasetView) else None

    @property
    def shared(self) -> bool:
        storage = self.data.base if isinstance(self.data, DatasetView) else self.data
        return isinstance(storage, SharedArray)

    @property
    def budget_owner(self) -> str:
        """The stable identity of this dataset's ledger for the audit trail.

        ``group:<name>`` for joint-group members (whose spends share one
        :class:`BudgetManager`), ``dataset:<name>`` for private budgets —
        the key ``repro audit spend`` replays totals under, matching how
        ``GET /datasets`` reports the same ledgers.
        """
        if self.group is not None:
            return f"group:{self.group}"
        return f"dataset:{self.name}"

    def to_json(self) -> Dict[str, Any]:
        view = self.view
        if view is None:
            sketches: Optional[Dict[str, Any]] = None
        else:
            footprint = view.sketch_footprint()
            sketches = {
                "names": list(footprint),
                "nbytes": footprint,
                "total_nbytes": view.sketch_nbytes(),
            }
        return {
            "name": self.name,
            "records": self.records,
            "dimension": self.dimension,
            "shared": self.shared,
            "group": self.group,
            "kinds": None if self.kinds is None else sorted(self.kinds),
            "sketches": sketches,
            "draining": self.draining,
            "budget": self.budget.to_json(),
        }


def _declared_needs(kinds: Optional[Tuple[str, ...]]) -> Tuple[str, ...]:
    """Union of ``EstimatorSpec.needs`` over the kinds a dataset serves.

    ``None`` (no allowlist) unions over every registered kind.  The result
    keeps :data:`SKETCH_KINDS` order so footprints and hand-offs are stable.
    """
    from repro.estimators import get_estimator, iter_estimators

    if kinds is None:
        specs = list(iter_estimators())
    else:
        specs = [get_estimator(kind) for kind in kinds]
    needed = {name for spec in specs for name in spec.needs}
    return tuple(name for name in SKETCH_KINDS if name in needed)


def _release_storage(data: Any) -> None:
    """Unlink whatever shared segments ``data`` holds (no-op for ndarrays)."""
    if isinstance(data, DatasetView):
        unlink_all(view_segments(data))
    elif isinstance(data, SharedArray):
        data.unlink()


def _validated_kinds(
    name: str, kinds: Optional[Sequence[str]]
) -> Optional[Tuple[str, ...]]:
    """Normalise a ``kinds=`` allowlist, rejecting unknown estimator kinds.

    Shared by registration and the live ``update_kinds`` path so a config
    typo fails loudly in both — at boot and at reload — never at query time.
    """
    if kinds is None:
        return None
    from repro.estimators import registered_kinds

    allowed = tuple(dict.fromkeys(str(kind) for kind in kinds))
    if not allowed:
        raise DomainError(
            f"dataset {name!r}: kinds= must name at least one estimator "
            "kind (omit it to serve every registered kind)"
        )
    known = set(registered_kinds())
    unknown = sorted(set(allowed) - known)
    if unknown:
        raise DomainError(
            f"dataset {name!r}: unknown estimator kind(s) {unknown} "
            f"(registered: {sorted(known)})"
        )
    return allowed


class DatasetRegistry:
    """Thread-safe name → :class:`RegisteredDataset` mapping.

    Datasets either carry their own :class:`BudgetManager` (``total_budget=``)
    or join a **joint budget group** (``group=``): one shared manager created
    up-front with :meth:`create_group` whose single cap spans every member
    dataset.  Usable as a context manager: exiting unlinks any shared-memory
    segments the registry owns.
    """

    def __init__(self):
        self._datasets: Dict[str, RegisteredDataset] = {}
        self._groups: Dict[str, BudgetManager] = {}
        self._lock = threading.Lock()

    # -- joint budget groups -----------------------------------------------
    def create_group(
        self,
        name: str,
        capacity: float,
        *,
        analyst_budgets: Optional[Mapping[str, float]] = None,
        manager: Optional[Any] = None,
    ) -> BudgetManager:
        """Create a joint budget group: one cap shared by its member datasets.

        Reserve/commit semantics are exactly those of a per-dataset budget —
        the members simply run them against one shared manager, so a query on
        any member draws the group down for all of them, and exhausting the
        cap refuses queries on every member with the group ledger unchanged.

        ``manager`` installs a pre-built manager under the group name
        instead of constructing a local :class:`BudgetManager` — this is
        how a cluster shard mounts the coordinator-owned ledger (a
        :class:`RemoteBudgetManager`) so that joint admission stays atomic
        across shards.  ``analyst_budgets`` belongs to whoever built the
        manager in that case and must be left unset.
        """
        name = str(name)
        if not name:
            raise DomainError("budget group name must be non-empty")
        if manager is None:
            manager = BudgetManager(capacity, analyst_budgets=analyst_budgets)
        elif analyst_budgets is not None:
            raise DomainError(
                f"budget group {name!r}: analyst_budgets= belongs to the "
                "supplied manager= and must not be passed alongside it"
            )
        with self._lock:
            if name in self._groups:
                raise DomainError(f"budget group {name!r} already exists")
            self._groups[name] = manager
        return manager

    def group(self, name: str) -> BudgetManager:
        """The shared :class:`BudgetManager` of group ``name``."""
        with self._lock:
            manager = self._groups.get(name)
            known = sorted(self._groups) if manager is None else None
        if manager is None:
            raise DomainError(
                f"no budget group named {name!r} (known groups: {known or 'none'})"
            )
        return manager

    def group_names(self) -> List[str]:
        with self._lock:
            return sorted(self._groups)

    def groups_json(self) -> Dict[str, Any]:
        """JSON-safe snapshot of every group: budget state plus member names."""
        with self._lock:
            groups = dict(self._groups)
            members: Dict[str, List[str]] = {name: [] for name in groups}
            for dataset in self._datasets.values():
                if dataset.group is not None:
                    members.setdefault(dataset.group, []).append(dataset.name)
        return {
            name: {"budget": manager.to_json(), "datasets": sorted(members[name])}
            for name, manager in groups.items()
        }

    # -- datasets ----------------------------------------------------------
    def register(
        self,
        name: str,
        data: Any,
        total_budget: Optional[float] = None,
        *,
        group: Optional[str] = None,
        analyst_budgets: Optional[Mapping[str, float]] = None,
        share: bool = False,
        kinds: Optional[Sequence[str]] = None,
        sketches: bool = True,
    ) -> RegisteredDataset:
        """Register ``data`` under ``name`` with a finite total privacy budget.

        Exactly one of ``total_budget`` (a private budget for this dataset)
        and ``group`` (membership in a joint budget group created with
        :meth:`create_group`) must be given.  ``share=True`` copies the data
        into shared memory once so engine-pool workers map the same pages
        instead of receiving pickled copies.  ``kinds`` restricts the dataset
        to an allowlist of registered estimator kinds (default: serve every
        registered kind); unknown names are rejected here so a config typo
        fails at boot, not at query time.

        ``sketches=True`` (the default) stores 1-D data as a
        :class:`~repro.dataview.DatasetView` and materialises, once, the
        union of the sketches declared (``EstimatorSpec.needs``) by the kinds
        this dataset serves; every cold query then reuses them, bit-for-bit
        identically to the sketch-free path.  With ``share=True`` the
        sketches are re-homed into shared segments alongside the data.  Pass
        ``sketches=False`` to store the bare array (no registration-time
        cost, per-query re-derivation — the pre-sketch behaviour).
        """
        name = str(name)
        if not name:
            raise DomainError("dataset name must be non-empty")
        allowed = _validated_kinds(name, kinds)
        if (total_budget is None) == (group is None):
            raise DomainError(
                f"dataset {name!r} needs exactly one of total_budget= (a private "
                "budget) or group= (a joint budget group)"
            )
        if group is not None:
            if analyst_budgets is not None:
                raise DomainError(
                    f"dataset {name!r}: analyst budgets of a joint group are set "
                    "at create_group time, not per member dataset"
                )
            manager = self.group(group)
        else:
            manager = BudgetManager(total_budget, analyst_budgets=analyst_budgets)
        array = np.asarray(data, dtype=float)
        if array.ndim not in (1, 2):
            raise DomainError(
                f"datasets must be 1-D or (n, d) 2-D, got shape {array.shape}"
            )
        if array.shape[0] < 1:
            raise InsufficientDataError(f"dataset {name!r} is empty")
        if not np.all(np.isfinite(array)):
            raise DomainError(f"dataset {name!r} contains non-finite values")
        stored: Any = SharedArray.from_array(array) if share else array
        if sketches and array.ndim == 1:
            needed = _declared_needs(allowed)
            view = DatasetView(stored).precompute(needed)
            if share and needed:
                # Re-home the sketches next to the data: pool workers attach
                # to the registration-time copies instead of re-sorting.
                view = share_view(view)
            stored = view
        dataset = RegisteredDataset(
            name=name, data=stored, budget=manager, group=group, kinds=allowed
        )
        with self._lock:
            if name in self._datasets:
                _release_storage(stored)
                raise DomainError(f"dataset {name!r} is already registered")
            self._datasets[name] = dataset
        return dataset

    def get(self, name: str) -> RegisteredDataset:
        with self._lock:
            dataset = self._datasets.get(name)
            registered = sorted(self._datasets) if dataset is None else None
        if dataset is None:
            raise UnknownDatasetError(
                f"no dataset named {name!r} is registered "
                f"(registered: {registered or 'none'})"
            )
        return dataset

    def set_draining(self, name: str, draining: bool = True) -> RegisteredDataset:
        """Flip a dataset's drain flag: stop admitting, keep serving cache hits.

        The first half of a safe decommission — drain, let in-flight and
        cached traffic settle, then :meth:`unregister` (the admin differ
        refuses to remove a dataset that was never drained).
        """
        dataset = self.get(name)
        dataset.draining = bool(draining)
        return dataset

    def update_kinds(
        self, name: str, kinds: Optional[Sequence[str]]
    ) -> RegisteredDataset:
        """Replace a dataset's ``kinds=`` allowlist (``None`` = every kind).

        Validated exactly like registration, so a reload naming an unknown
        kind is rejected before anything is applied.  Takes effect on the
        next admission; queries already past planning are unaffected.
        """
        dataset = self.get(name)
        dataset.kinds = _validated_kinds(name, kinds)
        return dataset

    def unregister(self, name: str) -> None:
        """Remove ``name`` and release its shared-memory segment, if any."""
        with self._lock:
            dataset = self._datasets.pop(name, None)
        if dataset is None:
            raise UnknownDatasetError(f"no dataset named {name!r} is registered")
        _release_storage(dataset.data)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._datasets)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._datasets

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def __iter__(self) -> Iterator[RegisteredDataset]:
        with self._lock:
            snapshot = list(self._datasets.values())
        return iter(snapshot)

    def close(self) -> None:
        """Unlink every owned shared segment; the registry stays usable."""
        with self._lock:
            datasets, self._datasets = list(self._datasets.values()), {}
            self._groups = {}
        for dataset in datasets:
            _release_storage(dataset.data)

    def __enter__(self) -> "DatasetRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
