"""Per-analyst / per-kind QoS: token-bucket rate limiting, pre-admission.

One hot analyst (or one expensive estimator kind) can starve everyone else
long before any privacy budget runs out — admission is cheap, estimator runs
are not.  :class:`RateLimiter` puts a classic token bucket in front of the
service: each applicable scope (the request's analyst, the query's
registered ``spec.name`` kind) holds a bucket refilled at ``rate`` tokens
per second up to ``burst``; a request consumes one token from *every*
applicable bucket atomically, or none at all.

The check runs **before** :meth:`~repro.service.QueryService.peek` /
:meth:`~repro.service.QueryService.submit`, so a rate-limit refusal provably
never touches the budget ledger, the answer cache, or the coalescing map —
it is a pure front-door decision, surfaced as a structured 429 document
(:func:`repro.service.wire.rate_limited_answer`) with a ``retry_after``
hint computed from the bucket deficit.

Limits are declarative (:class:`RateLimits`, parsed from the ``[limits]``
config section) and hot-swappable: :meth:`RateLimiter.configure` replaces
the limit table and resets the buckets, which is how an ``/admin/reload``
rotates QoS policy without a restart.  Time comes from an injectable
monotonic clock so tests can drive refill deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.exceptions import DomainError

__all__ = ["LimitSpec", "RateLimits", "RateLimitDecision", "RateLimiter"]


@dataclass(frozen=True)
class LimitSpec:
    """One bucket shape: sustained ``rate`` tokens/second, ``burst`` capacity."""

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if not (self.rate > 0.0):
            raise DomainError(f"rate limit rate must be > 0, got {self.rate!r}")
        if not (self.burst >= 1.0):
            raise DomainError(f"rate limit burst must be >= 1, got {self.burst!r}")


@dataclass(frozen=True)
class RateLimits:
    """The declarative limit table (the parsed ``[limits]`` config section).

    ``analyst`` / ``kind`` are the default bucket shapes for every analyst /
    every kind (``None`` disables that dimension); ``analysts`` / ``kinds``
    override the default per name.  Requests without an analyst share the
    anonymous bucket (key ``""``) under the default analyst shape.
    """

    analyst: Optional[LimitSpec] = None
    kind: Optional[LimitSpec] = None
    analysts: Mapping[str, LimitSpec] = field(default_factory=dict)
    kinds: Mapping[str, LimitSpec] = field(default_factory=dict)

    @property
    def enabled(self) -> bool:
        return bool(
            self.analyst is not None
            or self.kind is not None
            or self.analysts
            or self.kinds
        )


@dataclass(frozen=True)
class RateLimitDecision:
    """One refusal: which bucket ran dry and when to come back."""

    scope: str  # "analyst" | "kind"
    key: str
    retry_after: float
    rate: float
    burst: float


class _Bucket:
    """Mutable token bucket (guarded by the limiter's lock)."""

    __slots__ = ("spec", "tokens", "stamp")

    def __init__(self, spec: LimitSpec, now: float):
        self.spec = spec
        self.tokens = spec.burst
        self.stamp = now


class RateLimiter:
    """Atomic consume-from-all-or-none token buckets over a limit table.

    Thread-safe under one lock; a check is a couple of dict lookups and
    float updates, cheap enough to run on every request.  With no limits
    configured every check admits immediately.
    """

    def __init__(
        self,
        limits: Optional[RateLimits] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        self._lock = threading.Lock()
        self._limits = limits
        self._analyst_buckets: Dict[str, _Bucket] = {}
        self._kind_buckets: Dict[str, _Bucket] = {}
        self._allowed = 0
        self._limited = 0

    @property
    def enabled(self) -> bool:
        with self._lock:
            return self._limits is not None and self._limits.enabled

    def configure(self, limits: Optional[RateLimits]) -> None:
        """Replace the limit table (admin reload); buckets start full again."""
        with self._lock:
            self._limits = limits
            self._analyst_buckets.clear()
            self._kind_buckets.clear()

    def check(
        self, analyst: Optional[str], kind: str
    ) -> Optional[RateLimitDecision]:
        """Admit (``None``) or refuse one request, atomically.

        On admission one token is consumed from each applicable bucket; on
        refusal nothing is consumed anywhere and the decision names the
        first-refusing scope with a ``retry_after`` computed from its refill
        rate.
        """
        with self._lock:
            limits = self._limits
            if limits is None or not limits.enabled:
                return None
            now = self._clock()
            touched = []
            analyst_key = "" if analyst is None else str(analyst)
            spec = limits.analysts.get(analyst_key, limits.analyst)
            if spec is not None:
                touched.append(
                    ("analyst", analyst_key,
                     self._refill(self._analyst_buckets, analyst_key, spec, now))
                )
            spec = limits.kinds.get(kind, limits.kind)
            if spec is not None:
                touched.append(
                    ("kind", str(kind),
                     self._refill(self._kind_buckets, str(kind), spec, now))
                )
            for scope, key, bucket in touched:
                if bucket.tokens < 1.0:
                    self._limited += 1
                    return RateLimitDecision(
                        scope=scope,
                        key=key,
                        retry_after=(1.0 - bucket.tokens) / bucket.spec.rate,
                        rate=bucket.spec.rate,
                        burst=bucket.spec.burst,
                    )
            for _, _, bucket in touched:
                bucket.tokens -= 1.0
            self._allowed += 1
            return None

    @staticmethod
    def _refill(
        table: Dict[str, _Bucket], key: str, spec: LimitSpec, now: float
    ) -> _Bucket:
        """Fetch-or-create the bucket for ``key`` and refill it to ``now``.

        Caller must hold ``self._lock``.  A bucket whose spec changed (a
        reconfigured override) is rebuilt full rather than inheriting a
        stale balance.
        """
        bucket = table.get(key)
        if bucket is None or bucket.spec != spec:
            bucket = table[key] = _Bucket(spec, now)
            return bucket
        elapsed = max(now - bucket.stamp, 0.0)
        bucket.tokens = min(spec.burst, bucket.tokens + elapsed * spec.rate)
        bucket.stamp = now
        return bucket

    def stats(self) -> Dict[str, Any]:
        """JSON-safe counters for ``/metrics`` and ``/admin/state``."""
        with self._lock:
            return {
                "enabled": self._limits is not None and self._limits.enabled,
                "allowed": self._allowed,
                "limited": self._limited,
                "analyst_buckets": len(self._analyst_buckets),
                "kind_buckets": len(self._kind_buckets),
            }
