"""The v1 wire envelope: every document both front-ends emit, in one place.

Historically each front-end hand-built its JSON bodies, and the shapes had
started to drift (the threaded server's 404 body and the async server's were
assembled in two different modules).  This module is now the single source of
truth for the serving API:

* Every document carries ``"api": 1`` so clients can detect the envelope
  version before parsing anything else.
* Every refusal/error carries a structured ``"error"`` object —
  ``{"code": ..., "message": ..., "detail": {...}}`` — with a stable
  machine-readable ``code`` (the string that used to *be* the top-level
  ``error`` field) and a human-readable ``message``.  The one-release
  deprecation window of the restructuring is over: the top-level
  ``message`` / ``kinds`` aliases are gone (read ``error["message"]`` and
  ``error["detail"]["kinds"]``), and the legacy top-level ``levels`` field
  on ``POST /query`` bodies is rejected like any other unknown field —
  quantile levels go in ``params.levels``.
* The cluster tier adds two error codes on top of the single-process set:
  ``shard_unavailable`` (the router could not reach the shard owning a
  request's route key) and ``coordinator_unavailable`` (a shard could not
  reach the budget coordinator that owns a joint group's ledger).  Both
  map to HTTP 503 and charge nothing.

Front-ends must not assemble response dicts inline: new documents get a
builder here so the two protocol suites cannot drift again.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.estimators import kind_catalog
from repro.exceptions import ReproError
from repro.service.executor import QueryAnswer, QueryRequest, QueryService
from repro.service.queries import InvalidQueryError, Query, UnknownQueryKindError

__all__ = [
    "API_VERSION",
    "answer_document",
    "answers_document",
    "answer_status_code",
    "admin_disabled",
    "audit_rate_limit",
    "bad_request",
    "bearer_token",
    "coordinator_unavailable",
    "error_document",
    "health_document",
    "internal_error",
    "invalid_request",
    "kinds_document",
    "method_not_allowed",
    "parse_request",
    "rate_limited_answer",
    "register_response",
    "registration_disabled",
    "shard_unavailable",
    "shard_unavailable_answer",
    "stats_document",
    "too_large",
    "trace_document",
    "traces_document",
    "tracing_disabled",
    "unknown_path",
    "with_trace",
]

#: Version of the response envelope; bump only with a migration window.
API_VERSION = 1

#: answer.status -> HTTP status code for single-query responses.
_STATUS_CODES = {"ok": 200, "failed": 200, "refused": 403}
#: answer.error codes that override the status mapping.
_ERROR_CODES = {"unknown_dataset": 404, "coordinator_unavailable": 503}


def answer_status_code(answer: QueryAnswer) -> int:
    """HTTP status for one answer (batch responses are always 200)."""
    code = _ERROR_CODES.get(answer.error or "")
    if code is not None:
        return code
    if answer.status in _STATUS_CODES:
        return _STATUS_CODES[answer.status]
    return 400


# ---------------------------------------------------------------------------
# error documents


def error_document(
    code: str,
    message: str,
    *,
    status: str = "error",
    detail: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The uniform error body: everything lives in the ``error`` object."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if detail:
        error["detail"] = dict(detail)
    return {"api": API_VERSION, "status": status, "error": error}


def invalid_request(exc: ReproError) -> Dict[str, Any]:
    """The 400 body for a rejected request (shared by both front-ends).

    An unknown query kind carries the authoritative registered-kind list
    straight from the registry — never a hardcoded copy that can drift from
    what the server actually serves.
    """
    if isinstance(exc, UnknownQueryKindError):
        return error_document(
            "unknown_kind", str(exc), detail={"kinds": list(exc.kinds)}
        )
    return error_document("invalid_request", str(exc))


def bad_request(message: str) -> Dict[str, Any]:
    """A framing-level 400 (malformed request line, headers or body)."""
    return error_document("invalid_request", message)


def internal_error(exc: Exception) -> Dict[str, Any]:
    return error_document("internal", f"{type(exc).__name__}: {exc}")


def too_large(length: int, max_body: Optional[int]) -> Dict[str, Any]:
    return error_document(
        "payload_too_large",
        f"request body of {length} bytes exceeds the server's "
        f"{max_body}-byte limit",
        detail={"length": length, "max_body": max_body},
    )


def unknown_path(method: str, path: str) -> Dict[str, Any]:
    return error_document("unknown_path", f"no route for {method} {path}")


def method_not_allowed(method: str) -> Dict[str, Any]:
    return error_document("method_not_allowed", f"unsupported method {method}")


def registration_disabled() -> Dict[str, Any]:
    return error_document(
        "registration_disabled",
        "this server does not accept dataset registration",
    )


def shard_unavailable(shard: Any, detail: str) -> Dict[str, Any]:
    """The router's 503 body when a request's owning shard is unreachable.

    Routing is deterministic (consistent hash on the route key), so the
    router never silently retries elsewhere: answering from a different
    shard would be bit-for-bit identical for the value, but the owning
    shard's cache and any pinned private ledger live only there.
    """
    return error_document(
        "shard_unavailable",
        f"shard {shard} is unavailable: {detail}",
        detail={"shard": shard},
    )


def shard_unavailable_answer(
    dataset: Optional[str], kind: Optional[str], shard: Any, detail: str
) -> Dict[str, Any]:
    """A batch entry whose owning shard was unreachable (answer-shaped).

    Mirrors :func:`rate_limited_answer` so batch responses stay uniform:
    the entry is a failed answer with ``error.code = "shard_unavailable"``
    and exactly zero epsilon charged.
    """
    message = f"shard {shard} is unavailable: {detail}"
    return {
        "api": API_VERSION,
        "dataset": dataset,
        "kind": kind,
        "status": "failed",
        "key": "",
        "value": None,
        "epsilon_charged": 0.0,
        "cached": False,
        "coalesced": False,
        "remaining": None,
        "error": {
            "code": "shard_unavailable",
            "message": message,
            "detail": {"shard": shard},
        },
    }


def coordinator_unavailable(detail: str) -> Dict[str, Any]:
    """The 503 body when the budget coordinator cannot be reached.

    A joint group whose ledger owner is down must refuse to admit spend —
    falling back to any shard-local ledger would double-count the group
    cluster-wide — so the query is refused with nothing charged and
    nothing observed.
    """
    return error_document(
        "coordinator_unavailable",
        f"budget coordinator unavailable: {detail}",
    )


def admin_disabled() -> Dict[str, Any]:
    return error_document(
        "admin_disabled",
        "the admin surface is disabled: configure [admin] token= or set "
        "the REPRO_ADMIN_TOKEN environment variable and restart",
    )


# ---------------------------------------------------------------------------
# answers


def answer_document(answer: QueryAnswer) -> Dict[str, Any]:
    """The wire form of one :class:`QueryAnswer` under the v1 envelope.

    The answer fields stay top-level (unchanged from the legacy shape);
    error reporting lives in the structured ``error`` object.
    """
    value: Any = answer.value
    if isinstance(value, tuple):
        value = list(value)
    doc: Dict[str, Any] = {
        "api": API_VERSION,
        "dataset": answer.dataset,
        "kind": answer.kind,
        "status": answer.status,
        "key": answer.key,
        "value": value,
        "epsilon_charged": answer.epsilon_charged,
        "cached": answer.cached,
        "coalesced": answer.coalesced,
        "remaining": answer.remaining,
    }
    if answer.error is not None:
        doc["error"] = {"code": answer.error, "message": answer.message}
    if answer.query is not None:
        doc["query"] = answer.query.to_json()
    return doc


def answers_document(answer_docs: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The batch response: per-entry outcomes live in each answer document."""
    return {"api": API_VERSION, "status": "ok", "answers": answer_docs}


def rate_limited_answer(request: QueryRequest, decision: Any) -> Dict[str, Any]:
    """The structured 429 body for one pre-admission rate-limit refusal.

    Shaped like an answer document (so batch entries stay uniform), with
    ``error.code = "rate_limited"`` and the retry hint both in
    ``error.detail`` and as a top-level ``retry_after`` convenience.  The
    refusal happens *before* admission: the budget ledger is untouched and
    ``epsilon_charged`` is exactly 0.
    """
    retry_after = float(decision.retry_after)
    message = (
        f"rate limit exceeded for {decision.scope} {decision.key!r}: "
        f"retry in {retry_after:.3g}s"
    )
    return {
        "api": API_VERSION,
        "dataset": request.dataset,
        "kind": request.query.kind,
        "status": "refused",
        "key": "",
        "value": None,
        "epsilon_charged": 0.0,
        "cached": False,
        "coalesced": False,
        "remaining": None,
        "error": {
            "code": "rate_limited",
            "message": message,
            "detail": {
                "scope": decision.scope,
                "key": decision.key,
                "retry_after": retry_after,
            },
        },
        "retry_after": retry_after,
    }


def retry_after_header(decision: Any) -> str:
    """The ``Retry-After`` header value (integral seconds, at least 1)."""
    return str(max(1, math.ceil(float(decision.retry_after))))


def audit_rate_limit(service: QueryService, request: QueryRequest, decision: Any) -> None:
    """Audit one pre-admission 429 (shared by both front-ends).

    A rate-limit refusal never touches a ledger, but it is still a
    privacy-relevant *decision* about an analyst's request stream, so it
    joins the hash chain alongside reserve/commit/refuse.
    """
    if service.audit is not None:
        service.audit.record(
            "rate_limit",
            dataset=request.dataset,
            kind=request.query.kind,
            analyst=request.analyst,
            scope=decision.scope,
            bucket=decision.key,
            retry_after=float(decision.retry_after),
        )


# ---------------------------------------------------------------------------
# informational documents


def health_document(service: QueryService) -> Dict[str, Any]:
    return {
        "api": API_VERSION,
        "status": "ok",
        "datasets": service.registry.names(),
    }


def stats_document(
    service: QueryService, frontend: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """The ``GET /datasets`` body: service stats plus front-end counters."""
    doc: Dict[str, Any] = {"api": API_VERSION, "status": "ok"}
    doc.update(service.stats())
    if frontend is not None:
        doc["frontend"] = dict(frontend)
    return doc


def kinds_document(service: QueryService) -> Dict[str, Any]:
    """The ``GET /kinds`` body: the registry catalogue plus dataset allowlists."""
    return {
        "api": API_VERSION,
        "status": "ok",
        "kinds": kind_catalog(),
        "datasets": {
            dataset.name: (None if dataset.kinds is None else sorted(dataset.kinds))
            for dataset in service.registry
        },
    }


def with_trace(document: Dict[str, Any], trace_id: Optional[str]) -> Dict[str, Any]:
    """Echo the request's trace id into a response document (in place).

    Every v1 response of a traced request carries ``"trace": <id>`` so a
    client can quote the id back at ``GET /debug/traces/<id>`` or
    ``repro trace <id>``.  With tracing disabled (``trace_id=None``) the
    document is returned untouched — the wire shape without observability
    stays byte-identical to previous releases.
    """
    if trace_id is not None:
        document["trace"] = trace_id
    return document


def traces_document(tracer: Any, limit: int = 50) -> Dict[str, Any]:
    """The ``GET /debug/traces`` body: recorder counters plus recent traces."""
    return {
        "api": API_VERSION,
        "status": "ok",
        "tracing": tracer.stats(),
        "traces": tracer.recent(limit),
    }


def trace_document(tracer: Any, trace_id: str) -> Tuple[int, Dict[str, Any]]:
    """The ``GET /debug/traces/<id>`` response: one trace, or a 404."""
    found = tracer.get(trace_id)
    if found is None:
        return 404, error_document(
            "unknown_trace",
            f"no finished trace {trace_id!r} in the ring "
            "(evicted, still in flight, or never started)",
        )
    return 200, {"api": API_VERSION, "status": "ok", "trace": found}


def tracing_disabled() -> Dict[str, Any]:
    """The 404 body for ``/debug/traces`` on a server without a tracer."""
    return error_document(
        "tracing_disabled",
        "tracing is disabled: configure [observability] trace_ring= "
        "and restart (or reload)",
    )


# ---------------------------------------------------------------------------
# request parsing


def parse_request(payload: Any) -> QueryRequest:
    """Decode one query object into a :class:`QueryRequest`.

    Only the canonical v1 fields are accepted; the legacy top-level
    ``levels`` alias (removed after its one-release deprecation window) is
    rejected by :meth:`Query.from_json` like any other unknown field.
    """
    if not isinstance(payload, dict):
        raise InvalidQueryError(
            f"each query must be a JSON object, got {type(payload).__name__}"
        )
    if "dataset" not in payload:
        raise InvalidQueryError("query is missing the 'dataset' field")
    analyst = payload.get("analyst")
    body = {k: v for k, v in payload.items() if k not in ("dataset", "analyst")}
    return QueryRequest(
        dataset=str(payload["dataset"]),
        query=Query.from_json(body),
        analyst=None if analyst is None else str(analyst),
    )


def bearer_token(
    authorization: Optional[str], x_admin_token: Optional[str] = None
) -> Optional[str]:
    """Extract the admin token from ``Authorization: Bearer`` or ``X-Admin-Token``."""
    if authorization:
        scheme, _, value = authorization.partition(" ")
        if scheme.lower() == "bearer" and value.strip():
            return value.strip()
    if x_admin_token:
        return x_admin_token.strip()
    return None


def register_response(
    service: QueryService, payload: Any
) -> Tuple[int, Dict[str, Any]]:
    """Execute a registration payload; shared by both front-ends.

    Raises :class:`InvalidQueryError` (→ the caller's 400 path) for malformed
    payloads; returns ``(201, document)`` on success.
    """
    if not isinstance(payload, dict):
        raise InvalidQueryError("registration body must be a JSON object")
    for field in ("name", "values", "budget"):
        if field not in payload:
            raise InvalidQueryError(f"registration is missing the {field!r} field")
    try:
        dataset = service.register(
            str(payload["name"]),
            payload["values"],
            float(payload["budget"]),
            analyst_budgets=payload.get("analyst_budgets"),
            share=bool(payload.get("share", False)),
        )
    except (TypeError, ValueError) as exc:
        # Non-numeric budgets/values/analyst caps are client errors (the
        # ReproError cases are already handled by the caller's 400 path).
        raise InvalidQueryError(f"malformed registration: {exc}") from exc
    return 201, {"api": API_VERSION, "status": "ok", "dataset": dataset.to_json()}
