"""Noisy-answer cache: repeated identical queries cost zero extra epsilon.

Differential privacy is closed under post-processing, so *re-serving a noisy
answer that was already released* consumes no additional privacy budget —
only computing a fresh noisy answer does.  The cache therefore keys on the
canonical ``(dataset, query)`` form (:meth:`repro.service.queries.Query.canonical_key`)
and stores the exact answer object of the first release; every later
identical query is answered from memory at zero marginal epsilon, which is
simultaneously the correct DP move and the service's main throughput lever
(a hit is a dict lookup; a miss is a full estimator run).

Entries are evicted least-recently-used once ``maxsize`` is reached.  Note
that eviction is a *throughput* decision, not a privacy one: re-computing an
evicted query spends fresh budget, so the cache should be sized to hold the
service's working set.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.exceptions import DomainError

__all__ = ["AnswerCache", "CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters and current occupancy."""

    hits: int
    misses: int
    size: int
    maxsize: Optional[int]
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "maxsize": self.maxsize,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class AnswerCache:
    """Thread-safe LRU cache of released answers, keyed by canonical query.

    ``maxsize=None`` means unbounded; ``maxsize=0`` disables caching (every
    ``get`` is a miss, ``put`` is a no-op) — useful for benchmarking the
    uncached path.
    """

    def __init__(self, maxsize: Optional[int] = None):
        if maxsize is not None and maxsize < 0:
            raise DomainError(f"maxsize must be None or >= 0, got {maxsize}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[Any]:
        """The cached answer for ``key``, or ``None`` (counts a hit/miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return None

    def peek(self, key: str) -> Optional[Any]:
        """Probe for ``key``: count a hit when present, count *nothing* on absence.

        The probe semantics of the service's fast path: a present answer is a
        real, served hit (counted and LRU-refreshed, atomically); an absent
        one is not a miss yet — the caller counts it via :meth:`record_miss`
        (probe-answered refusals/invalids) or through the full submission's
        own lookup, keeping ``hits + misses`` equal to the number of
        answered lookups.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            return None

    def record_miss(self) -> None:
        """Count a miss for a probe resolved without a follow-up lookup.

        Used when a :meth:`peek` probe came up empty and the request is then
        answered without any further cache access (a refusal or an invalid
        answer on the fast path) — mirrors the miss the submission path
        counts for the same outcome.
        """
        with self._lock:
            self._misses += 1

    def put(self, key: str, answer: Any) -> None:
        """Store ``answer`` under ``key``, evicting LRU entries if needed."""
        with self._lock:
            if self._maxsize == 0:
                return
            self._entries[key] = answer
            self._entries.move_to_end(key)
            while self._maxsize is not None and len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def resize(self, maxsize: Optional[int]) -> int:
        """Change ``maxsize`` in place, evicting LRU entries down to the new cap.

        The control-plane primitive behind a live ``cache_size`` config
        change.  ``None`` lifts the bound, ``0`` disables caching (and clears
        it).  Returns how many entries were evicted; counters are preserved —
        resizing is an operational act, not a reset.
        """
        if maxsize is not None and maxsize < 0:
            raise DomainError(f"maxsize must be None or >= 0, got {maxsize}")
        with self._lock:
            self._maxsize = maxsize
            evicted = 0
            while maxsize is not None and len(self._entries) > maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
            return evicted

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self._maxsize,
                evictions=self._evictions,
            )
