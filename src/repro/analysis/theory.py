"""Theoretical error bounds from the paper, as evaluable curves.

The benchmark harness plots/compares measured errors against the shapes the
theorems predict.  Constants are not specified by the theorems (they hide
universal constants), so every function here returns the bound *without* a
leading constant; benchmarks compare shapes (scaling in ``n``, ``eps``,
``gamma``, ``k``) rather than absolute values.

Following the paper's convention (footnote 3), ``log x`` is defined to be 1
for ``x <= e``.
"""

from __future__ import annotations

import math

from repro.exceptions import DomainError

__all__ = [
    "paper_log",
    "loglog",
    "empirical_mean_error_bound",
    "quantile_rank_error_bound",
    "packing_lower_bound_value",
    "gaussian_mean_error_bound",
    "heavy_tailed_mean_error_bound",
    "gaussian_variance_error_bound",
    "heavy_tailed_variance_error_bound",
    "iqr_error_bound",
]


def paper_log(x: float) -> float:
    """Natural log with the paper's convention ``log(x) = 1`` for ``x <= e``."""
    if x <= math.e:
        return 1.0
    return math.log(x)


def loglog(x: float) -> float:
    """``log(log(x))`` under the paper's log convention (always >= 1)."""
    return paper_log(paper_log(x))


def _check_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0 or not math.isfinite(value):
            raise DomainError(f"{name} must be positive and finite, got {value}")


def empirical_mean_error_bound(gamma: float, n: int, epsilon: float, beta: float = 1.0 / 3.0) -> float:
    """Theorem 3.3: ``(gamma(D) / (eps n)) * log(log(gamma(D)) / beta)``."""
    _check_positive(gamma=gamma, n=n, epsilon=epsilon, beta=beta)
    return (gamma / (epsilon * n)) * paper_log(paper_log(gamma) / beta)


def quantile_rank_error_bound(gamma: float, epsilon: float, beta: float = 1.0 / 3.0) -> float:
    """Theorem 3.5: rank error ``(1 / eps) * log(gamma(D) / beta)``."""
    _check_positive(gamma=gamma, epsilon=epsilon, beta=beta)
    return (1.0 / epsilon) * paper_log(gamma / beta)


def packing_lower_bound_value(gamma: float, n: int, epsilon: float, domain_size: float) -> float:
    """Theorem 3.4: ``gamma(D) / (3 eps n) * log(log2(N))`` for the packing instance."""
    _check_positive(gamma=gamma, n=n, epsilon=epsilon, domain_size=domain_size)
    log2_n_domain = max(math.log2(domain_size), 2.0)
    return gamma / (3.0 * epsilon * n) * max(math.log(log2_n_domain), 1.0)


def gaussian_mean_error_bound(n: int, epsilon: float, sigma: float) -> float:
    """Theorem 4.6 error shape: ``sigma/sqrt(n) + (sigma/(eps n)) loglog(...) sqrt(log(eps n))``."""
    _check_positive(n=n, epsilon=epsilon, sigma=sigma)
    eps_n = max(epsilon * n, 2.0)
    privacy = (sigma / (epsilon * n)) * loglog(eps_n) * math.sqrt(paper_log(eps_n))
    sampling = sigma / math.sqrt(n)
    return sampling + privacy


def heavy_tailed_mean_error_bound(
    n: int, epsilon: float, sigma: float, k: float, mu_k: float, phi: float
) -> float:
    """Theorem 4.9 error shape for a finite k-th central moment ``mu_k``."""
    _check_positive(n=n, epsilon=epsilon, sigma=sigma, k=k, mu_k=mu_k, phi=phi)
    eps_n = max(epsilon * n, 2.0)
    privacy = (mu_k ** (1.0 / k)) / (eps_n ** (1.0 - 1.0 / k))
    privacy *= loglog((eps_n * mu_k) ** (1.0 / k) / phi)
    sampling = sigma / math.sqrt(n)
    return sampling + privacy


def gaussian_variance_error_bound(n: int, epsilon: float, sigma: float) -> float:
    """Theorem 5.3 error shape: ``sigma^2/sqrt(n) + (sigma^2/(eps n)) logloglog(...) log(eps n)``."""
    _check_positive(n=n, epsilon=epsilon, sigma=sigma)
    eps_n = max(epsilon * n, 2.0)
    privacy = (sigma**2 / (epsilon * n)) * paper_log(loglog(eps_n)) * paper_log(eps_n)
    sampling = sigma**2 / math.sqrt(n)
    return sampling + privacy


def heavy_tailed_variance_error_bound(
    n: int, epsilon: float, mu_4: float, k: float, mu_k: float, phi: float
) -> float:
    """Theorem 5.5 error shape for a finite k-th central moment (``k >= 4``)."""
    _check_positive(n=n, epsilon=epsilon, mu_4=mu_4, k=k, mu_k=mu_k, phi=phi)
    if k < 4:
        raise DomainError(f"Theorem 5.5 requires k >= 4, got {k}")
    eps_n = max(epsilon * n, 2.0)
    privacy = (mu_k ** (2.0 / k)) / (eps_n ** (1.0 - 2.0 / k))
    privacy *= loglog((eps_n * mu_k) ** (1.0 / k) / phi)
    sampling = math.sqrt(mu_4 / n)
    return sampling + privacy


def iqr_error_bound(n: int, epsilon: float, iqr: float, theta: float) -> float:
    """Theorem 6.2 error shape, inverted to an error for a given ``n``.

    The theorem states the sample complexity
    ``n ≳ 1/(eps alpha theta) + 1/(alpha theta)^2 + IQR/alpha``; solving each
    term for ``alpha`` and taking the maximum gives the predicted error shape
    ``alpha(n) ≈ max(1/(eps n theta), 1/(theta sqrt(n)), IQR/n)``.
    """
    _check_positive(n=n, epsilon=epsilon, iqr=iqr, theta=theta)
    privacy = 1.0 / (epsilon * n * theta)
    sampling = 1.0 / (theta * math.sqrt(n))
    discretization = iqr / n
    return max(privacy, sampling, discretization)
