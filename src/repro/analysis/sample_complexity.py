"""Empirical sample-complexity measurement.

The paper states most statistical results as sample complexities: the number
of samples ``n*(alpha)`` needed to achieve error ``alpha`` with constant
probability.  :func:`empirical_sample_complexity` measures that quantity for
any estimator by doubling ``n`` until the target accuracy is hit and then
bisecting, mirroring how the E14 benchmark compares measured complexities with
Theorems 1.7 and 1.10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.analysis.trials import EstimatorFn, run_statistical_trials
from repro.distributions.base import Distribution
from repro.exceptions import DomainError

__all__ = ["SampleComplexityResult", "empirical_sample_complexity"]


@dataclass(frozen=True)
class SampleComplexityResult:
    """Outcome of an empirical sample-complexity search.

    Attributes
    ----------
    alpha:
        Target absolute error.
    n_star:
        Smallest tested sample size at which the success criterion was met
        (``None`` if the search hit ``max_n`` without succeeding).
    tested:
        All ``(n, success_rate)`` pairs probed during the search.
    """

    alpha: float
    n_star: Optional[int]
    tested: Tuple[Tuple[int, float], ...]


def _success_rate(
    estimator: EstimatorFn,
    distribution: Distribution,
    parameter: str,
    n: int,
    alpha: float,
    trials: int,
    rng: np.random.Generator,
    workers: int,
    pool,
) -> float:
    result = run_statistical_trials(
        estimator, distribution, parameter, n, trials, rng, workers=workers, pool=pool
    )
    return float(np.mean(result.errors <= alpha))


def empirical_sample_complexity(
    estimator: EstimatorFn,
    distribution: Distribution,
    parameter: str,
    alpha: float,
    *,
    success_probability: float = 2.0 / 3.0,
    trials: int = 20,
    min_n: int = 32,
    max_n: int = 1_048_576,
    rng: RngLike = None,
    workers: int = 1,
    pool=None,
) -> SampleComplexityResult:
    """Measure the sample size needed to reach error ``alpha`` with the given probability.

    The search doubles ``n`` from ``min_n`` until the success criterion holds,
    then bisects between the last failing and first succeeding sizes.  The
    returned ``n_star`` is a measurement (subject to Monte-Carlo noise in the
    success rate), not a certified bound.

    Parameters
    ----------
    estimator:
        Callable mapping ``(data, rng)`` to a point estimate.
    distribution:
        Source distribution (supplies samples and the ground truth).
    parameter:
        ``"mean"``, ``"variance"`` or ``"iqr"``.
    alpha:
        Target absolute error.
    success_probability:
        Fraction of trials that must achieve the target error.
    trials:
        Trials per probed sample size.
    min_n, max_n:
        Search range for the sample size.
    workers:
        Engine worker count for the per-size trial batches; the measured
        rates are identical for any value given the same seed.
    pool:
        Optional open :class:`~repro.engine.EnginePool`.  The search probes
        many sample sizes in sequence; a shared pool forks its workers once
        and serves every probed size (and, in the benchmark drivers, every
        other cell of the sweep) without per-call startup.
    """
    if alpha <= 0:
        raise DomainError(f"alpha must be positive, got {alpha}")
    if not 0.0 < success_probability < 1.0:
        raise DomainError(
            f"success_probability must lie in (0, 1), got {success_probability}"
        )
    if min_n < 8 or max_n < min_n:
        raise DomainError(f"invalid search range [{min_n}, {max_n}]")
    generator = resolve_rng(rng)

    tested: List[Tuple[int, float]] = []

    # Phase 1: exponential search for a succeeding n.
    n = min_n
    succeeded_at: Optional[int] = None
    last_failure = min_n
    while n <= max_n:
        rate = _success_rate(
            estimator, distribution, parameter, n, alpha, trials, generator, workers, pool
        )
        tested.append((n, rate))
        if rate >= success_probability:
            succeeded_at = n
            break
        last_failure = n
        n *= 2
    if succeeded_at is None:
        return SampleComplexityResult(alpha=alpha, n_star=None, tested=tuple(tested))

    # Phase 2: bisection between the last failure and the first success.
    low, high = last_failure, succeeded_at
    while high - low > max(low // 4, 8):
        mid = (low + high) // 2
        rate = _success_rate(
            estimator, distribution, parameter, mid, alpha, trials, generator, workers, pool
        )
        tested.append((mid, rate))
        if rate >= success_probability:
            high = mid
        else:
            low = mid
    return SampleComplexityResult(alpha=alpha, n_star=high, tested=tuple(tested))
