"""The packing lower-bound construction of Theorem 3.4.

Theorem 3.4 shows that the ``loglog N / eps`` optimality ratio of the
empirical mean estimator cannot be avoided: for any ε-DP mechanism over the
finite domain ``[N]`` there is a dataset among the packing family
``D(0), D(1), ..., D(log2 N)`` on which the error is at least
``gamma(D) / (3 eps n) * log(log2 N)``.  ``D(0)`` is all zeros and ``D(i)``
changes ``log(log2 N) / eps`` of those zeros to ``2^i``.

The construction is exposed so the E4 benchmark can measure the error of the
implemented estimators *on these hardest instances* and report the achieved
optimality ratio next to the theoretical floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.theory import packing_lower_bound_value
from repro.exceptions import DomainError

__all__ = ["PackingInstance", "build_packing_instance", "packing_lower_bound"]


@dataclass(frozen=True)
class PackingInstance:
    """The family of packing datasets for one ``(N, n, eps)`` configuration.

    Attributes
    ----------
    domain_size:
        The finite domain bound ``N``.
    n:
        Number of records per dataset.
    epsilon:
        Privacy parameter the family is built for.
    changed_per_level:
        Number of records changed from 0 in each non-trivial dataset,
        ``ceil(log(log2 N) / eps)``.
    datasets:
        ``log2(N) + 1`` datasets; ``datasets[0]`` is all zeros and
        ``datasets[i]`` has ``changed_per_level`` entries equal to ``2^i``.
    """

    domain_size: int
    n: int
    epsilon: float
    changed_per_level: int
    datasets: List[np.ndarray]

    @property
    def levels(self) -> int:
        """Number of non-trivial datasets (``log2 N``)."""
        return len(self.datasets) - 1

    def true_means(self) -> List[float]:
        """Exact empirical means of every dataset in the family."""
        return [float(np.mean(d)) for d in self.datasets]

    def widths(self) -> List[float]:
        """Exact widths ``gamma(D)`` of every dataset in the family."""
        return [float(np.max(d) - np.min(d)) for d in self.datasets]


def build_packing_instance(domain_size: int, n: int, epsilon: float) -> PackingInstance:
    """Construct the Theorem 3.4 packing family for domain ``[0, N]``.

    Parameters
    ----------
    domain_size:
        The domain bound ``N`` (must be at least 2).
    n:
        Records per dataset; must exceed ``log(log2 N) / eps`` so the changed
        block fits.
    epsilon:
        Privacy parameter.
    """
    if domain_size < 2:
        raise DomainError(f"domain_size must be at least 2, got {domain_size}")
    if epsilon <= 0:
        raise DomainError(f"epsilon must be positive, got {epsilon}")
    levels = int(math.floor(math.log2(domain_size)))
    changed = max(1, int(math.ceil(math.log(max(math.log2(domain_size), 2.0)) / epsilon)))
    if n <= changed:
        raise DomainError(
            f"n must exceed log(log2 N)/eps = {changed} for the packing construction, got {n}"
        )

    datasets: List[np.ndarray] = [np.zeros(n)]
    for i in range(1, levels + 1):
        level_value = float(2**i)
        if level_value > domain_size:
            break
        data = np.zeros(n)
        data[:changed] = level_value
        datasets.append(data)
    return PackingInstance(
        domain_size=int(domain_size),
        n=int(n),
        epsilon=float(epsilon),
        changed_per_level=changed,
        datasets=datasets,
    )


def packing_lower_bound(instance: PackingInstance, level: int) -> float:
    """The Theorem 3.4 error floor ``gamma(D(level)) / (3 eps n) * log(log2 N)``."""
    if not 0 <= level < len(instance.datasets):
        raise DomainError(
            f"level must lie in [0, {len(instance.datasets) - 1}], got {level}"
        )
    if level == 0:
        return 0.0
    gamma = float(2**level)
    return packing_lower_bound_value(
        gamma, instance.n, instance.epsilon, instance.domain_size
    )
