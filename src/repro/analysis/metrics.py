"""Error metrics and trial-level summaries.

The paper states its guarantees as high-probability bounds (``Err(M, D, beta)``
in Section 2.3): the error that is not exceeded with probability ``1 - beta``.
The harness therefore reports, for every batch of trials, not only the mean
absolute error but also high quantiles of the error distribution, which is the
quantity the theorems actually bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import DomainError

__all__ = ["absolute_error", "relative_error", "ErrorSummary", "summarize_errors"]


def absolute_error(estimate: float, truth: float) -> float:
    """``|estimate - truth|``."""
    return abs(float(estimate) - float(truth))


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / |truth|`` (infinite when the truth is zero but the estimate is not)."""
    estimate = float(estimate)
    truth = float(truth)
    if truth == 0.0:
        return 0.0 if estimate == 0.0 else math.inf
    return abs(estimate - truth) / abs(truth)


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of a batch of per-trial absolute errors.

    Attributes
    ----------
    trials:
        Number of trials summarised.
    mean, median:
        Mean and median absolute error.
    q90, q95:
        90th / 95th percentile of the absolute error — the empirical analogue
        of the paper's high-probability error ``Err(M, D, beta)`` for
        ``beta = 0.1`` / ``0.05``.
    max:
        Worst observed error.
    """

    trials: int
    mean: float
    median: float
    q90: float
    q95: float
    max: float

    def as_row(self) -> dict:
        """Dictionary form used by the benchmark reporting helpers."""
        return {
            "trials": self.trials,
            "mean_err": self.mean,
            "median_err": self.median,
            "q90_err": self.q90,
            "q95_err": self.q95,
            "max_err": self.max,
        }


def summarize_errors(errors: Sequence[float]) -> ErrorSummary:
    """Summarise a sequence of absolute errors into an :class:`ErrorSummary`."""
    data = np.asarray(errors, dtype=float)
    if data.size == 0:
        raise DomainError("cannot summarise an empty error sequence")
    return ErrorSummary(
        trials=int(data.size),
        mean=float(np.mean(data)),
        median=float(np.median(data)),
        q90=float(np.quantile(data, 0.90)),
        q95=float(np.quantile(data, 0.95)),
        max=float(np.max(data)),
    )
