"""Analysis harness: error metrics, trial runner, theory curves and lower bounds."""

from repro.analysis.lower_bounds import PackingInstance, build_packing_instance, packing_lower_bound
from repro.analysis.metrics import ErrorSummary, absolute_error, relative_error, summarize_errors
from repro.analysis.sample_complexity import (
    SampleComplexityResult,
    empirical_sample_complexity,
)
from repro.analysis.theory import (
    empirical_mean_error_bound,
    gaussian_mean_error_bound,
    gaussian_variance_error_bound,
    heavy_tailed_mean_error_bound,
    heavy_tailed_variance_error_bound,
    iqr_error_bound,
    loglog,
    quantile_rank_error_bound,
)
from repro.analysis.trials import (
    StatisticalCell,
    TrialResult,
    run_statistical_grid,
    run_statistical_trials,
    run_trials,
)

__all__ = [
    "absolute_error",
    "relative_error",
    "ErrorSummary",
    "summarize_errors",
    "TrialResult",
    "run_trials",
    "run_statistical_trials",
    "StatisticalCell",
    "run_statistical_grid",
    "loglog",
    "empirical_mean_error_bound",
    "quantile_rank_error_bound",
    "gaussian_mean_error_bound",
    "heavy_tailed_mean_error_bound",
    "gaussian_variance_error_bound",
    "heavy_tailed_variance_error_bound",
    "iqr_error_bound",
    "PackingInstance",
    "build_packing_instance",
    "packing_lower_bound",
    "SampleComplexityResult",
    "empirical_sample_complexity",
]
