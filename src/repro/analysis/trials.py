"""Trial runner: repeat a randomized estimator and summarise its error.

Two entry points are provided:

* :func:`run_trials` — fully generic: the caller supplies a data generator and
  an estimator callable; used by the empirical-setting benchmarks where the
  dataset is fixed or adversarial.
* :func:`run_statistical_trials` — the common statistical-setting loop: draw a
  fresh i.i.d. sample from a :class:`~repro.distributions.Distribution` each
  trial, run the estimator, and compare against the distribution's true
  parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.analysis.metrics import ErrorSummary, summarize_errors
from repro.distributions.base import Distribution
from repro.exceptions import DomainError, MechanismError

__all__ = ["TrialResult", "run_trials", "run_statistical_trials"]

#: Signature of an estimator under test: (data, rng) -> point estimate.
EstimatorFn = Callable[[np.ndarray, np.random.Generator], float]
#: Signature of a data generator: (rng) -> dataset.
DataFn = Callable[[np.random.Generator], np.ndarray]


@dataclass(frozen=True)
class TrialResult:
    """Per-trial estimates and their error summary."""

    estimates: np.ndarray
    errors: np.ndarray
    truth: float
    summary: ErrorSummary
    failures: int = 0

    @property
    def mean_estimate(self) -> float:
        """Average of the per-trial estimates."""
        return float(np.mean(self.estimates)) if self.estimates.size else float("nan")


def run_trials(
    estimator: EstimatorFn,
    data_generator: DataFn,
    truth: float,
    trials: int,
    rng: RngLike = None,
    *,
    allow_failures: bool = False,
) -> TrialResult:
    """Run ``trials`` independent (data, estimate) repetitions.

    Parameters
    ----------
    estimator:
        Callable mapping ``(data, rng)`` to a point estimate.
    data_generator:
        Callable mapping ``rng`` to a dataset; called once per trial.
    truth:
        Ground-truth value the estimates are compared against.
    trials:
        Number of repetitions.
    allow_failures:
        When ``True``, :class:`MechanismError` raised by the estimator (e.g. a
        failed propose-test-release test) is counted instead of propagated,
        and the failed trial contributes no estimate.
    """
    if trials < 1:
        raise DomainError(f"trials must be at least 1, got {trials}")
    generator = resolve_rng(rng)

    estimates = []
    failures = 0
    for _ in range(trials):
        data = data_generator(generator)
        try:
            estimates.append(float(estimator(data, generator)))
        except MechanismError:
            if not allow_failures:
                raise
            failures += 1
    if not estimates:
        raise MechanismError(f"all {trials} trials failed")
    estimates_arr = np.asarray(estimates, dtype=float)
    errors = np.abs(estimates_arr - truth)
    return TrialResult(
        estimates=estimates_arr,
        errors=errors,
        truth=float(truth),
        summary=summarize_errors(errors),
        failures=failures,
    )


def run_statistical_trials(
    estimator: EstimatorFn,
    distribution: Distribution,
    parameter: str,
    n: int,
    trials: int,
    rng: RngLike = None,
    *,
    allow_failures: bool = False,
) -> TrialResult:
    """Statistical-setting trials: fresh i.i.d. samples from ``distribution``.

    Parameters
    ----------
    estimator:
        Callable mapping ``(data, rng)`` to a point estimate.
    distribution:
        Source distribution; also supplies the ground truth.
    parameter:
        ``"mean"``, ``"variance"`` or ``"iqr"`` — which true parameter to
        compare against.
    n:
        Sample size per trial.
    trials:
        Number of repetitions.
    """
    truth_lookup = {
        "mean": lambda: distribution.mean,
        "variance": lambda: distribution.variance,
        "iqr": lambda: distribution.iqr,
    }
    if parameter not in truth_lookup:
        raise DomainError(
            f"parameter must be one of {sorted(truth_lookup)}, got {parameter!r}"
        )
    truth = float(truth_lookup[parameter]())

    def generate(generator: np.random.Generator) -> np.ndarray:
        return distribution.sample(n, generator)

    return run_trials(
        estimator,
        generate,
        truth,
        trials,
        rng,
        allow_failures=allow_failures,
    )
