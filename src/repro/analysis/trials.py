"""Trial runner: repeat a randomized estimator and summarise its error.

Three entry points are provided:

* :func:`run_trials` — fully generic: the caller supplies a data generator and
  an estimator callable; used by the empirical-setting benchmarks where the
  dataset is fixed or adversarial.
* :func:`run_statistical_trials` — the common statistical-setting loop: draw a
  fresh i.i.d. sample from a :class:`~repro.distributions.Distribution` each
  trial, run the estimator, and compare against the distribution's true
  parameter.
* :func:`run_statistical_grid` — a whole sweep of statistical cells
  (:class:`StatisticalCell`: estimator × distribution × parameter × n) fanned
  out through :func:`repro.engine.run_grid`, so the benchmark drivers
  parallelise across the *grid* dimension as well as across trials, and many
  cells share one persistent :class:`~repro.engine.EnginePool`.

All are thin layers over :mod:`repro.engine`: each trial gets its own child
generator derived from the base seed, so estimates are bit-for-bit identical
for ``workers=1`` and ``workers=N``, independent of how cells are scheduled,
and a failed trial never shifts the randomness of later trials.  Pass
``rng_policy="shared"`` (serial only) to reproduce the legacy *trial-loop*
behaviour where every trial consumed one shared stream.  Note that this
freezes only how the loop feeds randomness to trials — the estimators and
mechanisms underneath may change how much randomness they draw between
versions, so bitwise reproduction of historical numbers additionally requires
the same library version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.analysis.metrics import ErrorSummary, summarize_errors
from repro.distributions.base import Distribution
from repro.engine import GridCell, TrialFailure, run_batch, run_grid
from repro.exceptions import DomainError, MechanismError

__all__ = [
    "TrialResult",
    "run_trials",
    "run_statistical_trials",
    "StatisticalCell",
    "run_statistical_grid",
]

#: Signature of an estimator under test: (data, rng) -> point estimate.
#: Any kind in the estimator-spec registry drops into this signature via
#: ``repro.estimators.get_estimator(kind).estimator_fn(epsilon, **params)``,
#: so trial runs and statistical grids sweep registered kinds (including the
#: adapted ``baseline.*`` estimators) without bespoke closures.
EstimatorFn = Callable[[np.ndarray, np.random.Generator], float]
#: Signature of a data generator: (rng) -> dataset.
DataFn = Callable[[np.random.Generator], np.ndarray]

#: Accepted values for the ``rng_policy`` argument of :func:`run_trials`.
_RNG_POLICIES = ("per-trial", "shared")


class _DataGenerationError(Exception):
    """Internal wrapper: a MechanismError raised by the *data generator*.

    Trial-failure capture applies only to the estimator; this wrapper is not
    in the engine's ``failure_types``, so it propagates out of the batch and
    :func:`run_trials` re-raises the original exception.
    """

    def __init__(self, original: MechanismError):
        super().__init__(original)
        self.original = original


@dataclass(frozen=True)
class TrialResult:
    """Per-trial estimates and their error summary.

    ``failures`` keeps the historical count; ``failure_records`` carries the
    structured per-trial records (index, exception type, message) captured by
    the engine when ``allow_failures=True``.
    """

    estimates: np.ndarray
    errors: np.ndarray
    truth: float
    summary: ErrorSummary
    failures: int = 0
    failure_records: Tuple[TrialFailure, ...] = ()

    @property
    def mean_estimate(self) -> float:
        """Average of the per-trial estimates."""
        return float(np.mean(self.estimates)) if self.estimates.size else float("nan")


def _run_shared_stream(
    estimator: EstimatorFn,
    data_generator: DataFn,
    trials: int,
    rng: RngLike,
    allow_failures: bool,
) -> Tuple[list, list]:
    """Legacy serial loop: every trial consumes one shared random stream.

    The loop itself is kept bit-for-bit identical to the pre-engine
    implementation (same stream, same consumption order); reproducing
    historical numbers exactly also requires the estimator's own randomness
    consumption to be unchanged.  Note the policy's documented flaw: a failed
    trial leaves the shared stream at a different point, shifting every later
    trial.
    """
    generator = resolve_rng(rng)
    estimates: list = []
    failures: list = []
    for index in range(trials):
        data = data_generator(generator)
        try:
            estimates.append(float(estimator(data, generator)))
        except MechanismError as exc:
            if not allow_failures:
                raise
            failures.append(
                TrialFailure(index=index, error=type(exc).__name__, message=str(exc))
            )
    return estimates, failures


def _make_trial_fn(estimator: EstimatorFn, data_generator: DataFn) -> Callable:
    """The engine trial body shared by the batch and grid paths."""

    def trial(index: int, generator: np.random.Generator) -> float:
        try:
            data = data_generator(generator)
        except MechanismError as exc:
            # Only the *estimator* call is a trial failure (matching the
            # legacy loop and the "shared" policy); a MechanismError from
            # the data generator must propagate even under allow_failures,
            # so smuggle it past the engine's catch.
            raise _DataGenerationError(exc) from exc
        return float(estimator(data, generator))

    return trial


def _finalise(
    estimates: Sequence[float],
    failure_records: Sequence[TrialFailure],
    truth: float,
    trials: int,
) -> TrialResult:
    if not estimates:
        raise MechanismError(f"all {trials} trials failed")
    estimates_arr = np.asarray(estimates, dtype=float)
    errors = np.abs(estimates_arr - truth)
    return TrialResult(
        estimates=estimates_arr,
        errors=errors,
        truth=float(truth),
        summary=summarize_errors(errors),
        failures=len(failure_records),
        failure_records=tuple(failure_records),
    )


def run_trials(
    estimator: EstimatorFn,
    data_generator: DataFn,
    truth: float,
    trials: int,
    rng: RngLike = None,
    *,
    allow_failures: bool = False,
    workers: int = 1,
    rng_policy: str = "per-trial",
    pool=None,
) -> TrialResult:
    """Run ``trials`` independent (data, estimate) repetitions.

    Parameters
    ----------
    estimator:
        Callable mapping ``(data, rng)`` to a point estimate.
    data_generator:
        Callable mapping ``rng`` to a dataset; called once per trial.
    truth:
        Ground-truth value the estimates are compared against.
    trials:
        Number of repetitions.
    allow_failures:
        When ``True``, :class:`MechanismError` raised by the estimator (e.g. a
        failed propose-test-release test) is captured as a structured
        :class:`~repro.engine.TrialFailure` instead of propagated, and the
        failed trial contributes no estimate.
    workers:
        Process count handed to :func:`repro.engine.run_batch`; estimates are
        identical for any value given the same seed.
    rng_policy:
        ``"per-trial"`` (default) derives an independent child generator per
        trial; ``"shared"`` reproduces the legacy single-stream trial loop
        (see the module docstring for the scope of that guarantee) and
        requires ``workers=1``.
    pool:
        Optional open :class:`~repro.engine.EnginePool`; lets many trial runs
        share one set of forked workers.
    """
    if trials < 1:
        raise DomainError(f"trials must be at least 1, got {trials}")
    if rng_policy not in _RNG_POLICIES:
        raise DomainError(
            f"rng_policy must be one of {_RNG_POLICIES}, got {rng_policy!r}"
        )

    if rng_policy == "shared":
        if workers != 1 or pool is not None:
            raise DomainError(
                "rng_policy='shared' is a serial compatibility mode; use "
                "rng_policy='per-trial' for workers > 1"
            )
        estimates, failure_records = _run_shared_stream(
            estimator, data_generator, trials, rng, allow_failures
        )
    else:
        try:
            batch = run_batch(
                _make_trial_fn(estimator, data_generator),
                trials,
                rng,
                workers=workers,
                allow_failures=allow_failures,
                pool=pool,
            )
        except _DataGenerationError as wrapper:
            raise wrapper.original
        estimates = list(batch.results)
        failure_records = list(batch.failures)

    return _finalise(estimates, failure_records, truth, trials)


def _statistical_truth(distribution: Distribution, parameter: str) -> float:
    truth_lookup = {
        "mean": lambda: distribution.mean,
        "variance": lambda: distribution.variance,
        "iqr": lambda: distribution.iqr,
    }
    if parameter not in truth_lookup:
        raise DomainError(
            f"parameter must be one of {sorted(truth_lookup)}, got {parameter!r}"
        )
    return float(truth_lookup[parameter]())


def run_statistical_trials(
    estimator: EstimatorFn,
    distribution: Distribution,
    parameter: str,
    n: int,
    trials: int,
    rng: RngLike = None,
    *,
    allow_failures: bool = False,
    workers: int = 1,
    rng_policy: str = "per-trial",
    pool=None,
) -> TrialResult:
    """Statistical-setting trials: fresh i.i.d. samples from ``distribution``.

    Parameters
    ----------
    estimator:
        Callable mapping ``(data, rng)`` to a point estimate.
    distribution:
        Source distribution; also supplies the ground truth.
    parameter:
        ``"mean"``, ``"variance"`` or ``"iqr"`` — which true parameter to
        compare against.
    n:
        Sample size per trial.
    trials:
        Number of repetitions.
    workers, rng_policy, pool:
        Forwarded to :func:`run_trials` / the engine.
    """
    truth = _statistical_truth(distribution, parameter)

    def generate(generator: np.random.Generator) -> np.ndarray:
        return distribution.sample(n, generator)

    return run_trials(
        estimator,
        generate,
        truth,
        trials,
        rng,
        allow_failures=allow_failures,
        workers=workers,
        rng_policy=rng_policy,
        pool=pool,
    )


@dataclass(frozen=True)
class StatisticalCell:
    """One cell of a statistical benchmark sweep.

    The grid analogue of one :func:`run_statistical_trials` call: ``key``
    labels the cell for result lookup, ``rng`` is the cell's own base seed
    (give each cell a distinct seed), and the remaining fields mirror the
    trial-runner arguments.
    """

    estimator: EstimatorFn
    distribution: Distribution
    parameter: str
    n: int
    trials: int
    rng: RngLike = None
    key: object = None
    allow_failures: bool = False


def run_statistical_grid(
    cells: Sequence[StatisticalCell],
    *,
    workers: Optional[int] = 1,
    pool=None,
) -> List[TrialResult]:
    """Run a whole sweep of statistical cells through :func:`repro.engine.run_grid`.

    Every cell's result is bit-for-bit identical to calling
    :func:`run_statistical_trials` on that cell alone with the same seed —
    the grid only changes *where* the trials execute (one shared pool,
    spans of all cells interleaved), never what they compute.

    Returns one :class:`TrialResult` per cell, in submission order.
    """
    grid_cells = []
    truths = []
    for cell in cells:
        if cell.trials < 1:
            raise DomainError(
                f"cell {cell.key!r}: trials must be at least 1, got {cell.trials}"
            )
        truths.append(_statistical_truth(cell.distribution, cell.parameter))

        def generate(generator, distribution=cell.distribution, n=cell.n):
            return distribution.sample(n, generator)

        grid_cells.append(
            GridCell(
                trial_fn=_make_trial_fn(cell.estimator, generate),
                trials=cell.trials,
                rng=cell.rng,
                key=cell.key,
                allow_failures=cell.allow_failures,
            )
        )

    try:
        grid = run_grid(grid_cells, workers=workers, pool=pool)
    except _DataGenerationError as wrapper:
        raise wrapper.original

    results: List[TrialResult] = []
    for cell, truth, batch in zip(cells, truths, grid.batches):
        assert batch is not None  # allow_cell_failures is never set here
        results.append(
            _finalise(list(batch.results), list(batch.failures), truth, cell.trials)
        )
    return results
