"""CoinPress-style iterative mean estimation, adapted to pure DP ([BDKU20]).

CoinPress iteratively shrinks a confidence interval for the mean: each round
clips the data to the current interval (padded by ``O(sigma_max sqrt(log n))``),
releases a noisy clipped mean with a share of the budget, and re-centres the
interval around it.  The original uses zCDP and Gaussian noise; since this
library's comparisons are under pure ε-DP, each round here uses the Laplace
mechanism and the budget is split evenly across rounds (basic composition).

Requires assumptions A1 (initial interval ``[-R, R]``) and A2 (``sigma_max``);
its analysis assumes (sub-)Gaussian data (A3).  The benefit over the one-shot
bounded Laplace baseline is that a very loose ``R`` only hurts for the first
round or two; the remaining dependence on ``sigma_max`` is what the universal
estimator removes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import validate_epsilon
from repro.baselines.base import BaselineEstimator
from repro.exceptions import AssumptionRequiredError, InsufficientDataError

__all__ = ["CoinPressMean"]


class CoinPressMean(BaselineEstimator):
    """Iterative interval-refinement mean estimator (pure-DP CoinPress adaptation)."""

    name = "coinpress_mean"
    target = "mean"
    assumptions = frozenset({"A1", "A2", "A3"})
    privacy = "pure"
    reference = "BDKU20 (CoinPress), Laplace-noise adaptation"

    def __init__(
        self,
        radius: Optional[float] = None,
        sigma_max: Optional[float] = None,
        rounds: int = 3,
    ) -> None:
        if radius is None or sigma_max is None:
            raise AssumptionRequiredError(
                "CoinPressMean requires the mean range R (A1) and sigma_max (A2)"
            )
        if radius <= 0 or sigma_max <= 0:
            raise AssumptionRequiredError("R and sigma_max must be positive")
        if rounds < 1:
            raise AssumptionRequiredError(f"rounds must be at least 1, got {rounds}")
        self.radius = float(radius)
        self.sigma_max = float(sigma_max)
        self.rounds = int(rounds)

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        epsilon = validate_epsilon(epsilon)
        data = np.asarray(values, dtype=float)
        if data.size < 8:
            raise InsufficientDataError("need at least 8 samples")
        generator = resolve_rng(rng)
        n = data.size

        eps_round = epsilon / self.rounds
        padding = 2.0 * self.sigma_max * math.sqrt(2.0 * math.log(max(2 * n, 3)))
        low, high = -self.radius, self.radius
        estimate = 0.0
        for _ in range(self.rounds):
            clip_low = low - padding
            clip_high = high + padding
            clipped = np.clip(data, clip_low, clip_high)
            sensitivity = (clip_high - clip_low) / n
            noise_scale = sensitivity / eps_round
            estimate = float(np.mean(clipped) + generator.laplace(scale=noise_scale))
            # Shrink the interval: sampling error + a high-probability bound on
            # the Laplace noise of this round.
            half_width = (
                2.0 * self.sigma_max / math.sqrt(n)
                + noise_scale * math.log(2.0 * n)
            )
            low, high = estimate - half_width, estimate + half_width
        return estimate
