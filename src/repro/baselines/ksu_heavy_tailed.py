"""KSU-style heavy-tailed mean estimation under moment assumptions ([KSU20]).

[KSU20] estimate the mean of a distribution with a bounded k-th central moment
``mu_k <= mu_k_bound`` under pure DP, assuming additionally a range ``[-R, R]``
for the mean.  The structure mirrors [KV18]: localise the mean with a noisy
histogram whose bin width is the moment-based truncation radius
``tau = (2 n eps mu_k_bound)^{1/k}``, then clip to the located bin padded by
``tau`` and release a noisy clipped mean.  The truncation radius balances the
clipping bias ``mu_k_bound / tau^{k-1}`` against the Laplace noise
``tau / (eps n)``, giving the optimal privacy error
``~ mu_k_bound^{1/(k-1)} / (eps n)^{(k-1)/k}`` — *provided* ``mu_k_bound`` is a
constant-factor approximation of the true moment, which is exactly the
assumption the paper's universal estimator removes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import validate_epsilon
from repro.baselines.base import BaselineEstimator
from repro.exceptions import AssumptionRequiredError, InsufficientDataError
from repro.mechanisms.noisy_max import report_noisy_max

__all__ = ["KSUHeavyTailedMean"]


class KSUHeavyTailedMean(BaselineEstimator):
    """[KSU20]-style heavy-tailed mean estimator (assumptions A1, A2-moment)."""

    name = "ksu_heavy_tailed_mean"
    target = "mean"
    assumptions = frozenset({"A1", "A2"})
    privacy = "pure"
    reference = "KSU20"

    def __init__(
        self,
        radius: Optional[float] = None,
        moment_order: int = 2,
        moment_bound: Optional[float] = None,
    ) -> None:
        if radius is None or moment_bound is None:
            raise AssumptionRequiredError(
                "KSUHeavyTailedMean requires the mean range R (A1) and a k-th moment bound (A2)"
            )
        if radius <= 0 or moment_bound <= 0:
            raise AssumptionRequiredError("R and the moment bound must be positive")
        if moment_order < 2:
            raise AssumptionRequiredError(f"moment order must be >= 2, got {moment_order}")
        self.radius = float(radius)
        self.moment_order = int(moment_order)
        self.moment_bound = float(moment_bound)

    def _truncation_radius(self, n: int, epsilon: float) -> float:
        k = self.moment_order
        return (2.0 * max(epsilon * n, 1.0) * self.moment_bound) ** (1.0 / k)

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        epsilon = validate_epsilon(epsilon)
        data = np.asarray(values, dtype=float)
        if data.size < 8:
            raise InsufficientDataError("need at least 8 samples")
        generator = resolve_rng(rng)
        n = data.size

        tau = self._truncation_radius(n, epsilon)

        # Stage 1 (eps/2): localise the mean over [-R, R] with bins of width tau.
        bin_width = max(tau, self.radius / 4096.0)
        edges = np.arange(-self.radius, self.radius + bin_width, bin_width)
        if edges.size < 2:
            edges = np.array([-self.radius, self.radius])
        counts, _ = np.histogram(np.clip(data, -self.radius, self.radius), bins=edges)
        best = report_noisy_max(counts, epsilon / 2.0, generator)
        center = 0.5 * (edges[best] + edges[best + 1])

        # Stage 2 (eps/2): clipped mean around the located bin, padded by tau.
        low, high = center - 2.0 * tau, center + 2.0 * tau
        clipped = np.clip(data, low, high)
        sensitivity = (high - low) / n
        return float(np.mean(clipped) + generator.laplace(scale=2.0 * sensitivity / epsilon))
