"""Naive bounded-range Laplace baselines (assumption A1 / A2).

These are the simplest private estimators one can write when the analyst is
willing to assume the data lie in a known range: clip to the assumed range
and add Laplace noise calibrated to it.  Their error is proportional to the
*assumed* range rather than the data's actual spread, which is exactly the
gap the paper's instance-optimal estimators close.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import validate_epsilon
from repro.baselines.base import BaselineEstimator
from repro.exceptions import AssumptionRequiredError, InsufficientDataError

__all__ = ["BoundedLaplaceMean", "BoundedLaplaceVariance"]


class BoundedLaplaceMean(BaselineEstimator):
    """Clip to the assumed range ``[-R, R]`` and release the mean with Laplace noise.

    Requires assumption A1 (the mean range ``R``).  The error is
    ``O(R / (eps n))`` — independent of how concentrated the data actually are,
    so a loose ``R`` translates directly into a loose estimate.
    """

    name = "bounded_laplace_mean"
    target = "mean"
    assumptions = frozenset({"A1"})
    privacy = "pure"
    reference = "folklore (Laplace mechanism)"

    def __init__(self, radius: Optional[float] = None) -> None:
        if radius is None:
            raise AssumptionRequiredError(
                "BoundedLaplaceMean requires the a-priori mean range R (assumption A1)"
            )
        if radius <= 0 or not math.isfinite(radius):
            raise AssumptionRequiredError(f"radius must be positive and finite, got {radius}")
        self.radius = float(radius)

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        epsilon = validate_epsilon(epsilon)
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            raise InsufficientDataError("dataset is empty")
        generator = resolve_rng(rng)
        clipped = np.clip(data, -self.radius, self.radius)
        sensitivity = 2.0 * self.radius / data.size
        return float(np.mean(clipped) + generator.laplace(scale=sensitivity / epsilon))


class BoundedLaplaceVariance(BaselineEstimator):
    """Variance via paired squared differences clipped to an assumed magnitude.

    Requires assumption A2 (an upper bound ``sigma_max`` on the standard
    deviation): the paired statistic ``Z = (X - X')^2 / 2`` is clipped to
    ``[0, c * sigma_max^2]`` with ``c = 2 ln(n)`` to keep the clipping bias
    negligible for sub-Gaussian data, and the clipped mean is released with
    Laplace noise.
    """

    name = "bounded_laplace_variance"
    target = "variance"
    assumptions = frozenset({"A2"})
    privacy = "pure"
    reference = "folklore (Laplace mechanism)"

    def __init__(self, sigma_max: Optional[float] = None) -> None:
        if sigma_max is None:
            raise AssumptionRequiredError(
                "BoundedLaplaceVariance requires the a-priori bound sigma_max (assumption A2)"
            )
        if sigma_max <= 0 or not math.isfinite(sigma_max):
            raise AssumptionRequiredError(f"sigma_max must be positive and finite, got {sigma_max}")
        self.sigma_max = float(sigma_max)

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        epsilon = validate_epsilon(epsilon)
        data = np.asarray(values, dtype=float)
        if data.size < 4:
            raise InsufficientDataError("need at least 4 samples")
        generator = resolve_rng(rng)

        permuted = generator.permutation(data)
        n_pairs = permuted.size // 2
        paired = 0.5 * (permuted[: 2 * n_pairs : 2] - permuted[1 : 2 * n_pairs : 2]) ** 2

        ceiling = 2.0 * math.log(max(data.size, 3)) * self.sigma_max**2
        clipped = np.clip(paired, 0.0, ceiling)
        sensitivity = ceiling / n_pairs
        return float(np.mean(clipped) + generator.laplace(scale=sensitivity / epsilon))
