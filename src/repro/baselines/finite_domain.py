"""Finite-domain ``[0, N]`` mean baseline.

Prior empirical mean estimators ([NRS07, AD20, HLY21]) assume the data live
in a known finite domain ``[N] = {0, ..., N}``.  The simplest worst-case
optimal instance of that family is the Laplace mechanism with sensitivity
``N / n``.  Its error is proportional to ``N``, whereas the paper's
``InfiniteDomainMean`` pays only ``gamma(D) * loglog(gamma(D))`` — an
exponential improvement in the optimality ratio (``loglog N`` vs ``log N``)
and the comparison measured by benchmark E4.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import validate_epsilon
from repro.baselines.base import BaselineEstimator
from repro.exceptions import AssumptionRequiredError, InsufficientDataError

__all__ = ["FiniteDomainLaplaceMean"]


class FiniteDomainLaplaceMean(BaselineEstimator):
    """Empirical mean over a known finite domain ``[0, N]`` via the Laplace mechanism.

    Requires the domain bound ``N`` (a form of assumption A1).  Values outside
    ``[0, N]`` are clipped into the domain before averaging, as any
    finite-domain mechanism must.
    """

    name = "finite_domain_laplace_mean"
    target = "mean"
    assumptions = frozenset({"A1"})
    privacy = "pure"
    reference = "NRS07 / AD20 / HLY21 (finite-domain setting)"

    def __init__(self, domain_size: Optional[int] = None) -> None:
        if domain_size is None:
            raise AssumptionRequiredError(
                "FiniteDomainLaplaceMean requires the domain bound N"
            )
        if domain_size <= 0:
            raise AssumptionRequiredError(f"domain size must be positive, got {domain_size}")
        self.domain_size = int(domain_size)

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        epsilon = validate_epsilon(epsilon)
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            raise InsufficientDataError("dataset is empty")
        generator = resolve_rng(rng)
        clipped = np.clip(data, 0.0, float(self.domain_size))
        sensitivity = self.domain_size / data.size
        return float(np.mean(clipped) + generator.laplace(scale=sensitivity / epsilon))
