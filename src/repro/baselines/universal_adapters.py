"""Adapters exposing this paper's universal estimators through the baseline interface.

The comparison benchmarks iterate over a list of :class:`BaselineEstimator`
objects; these adapters let the universal estimators participate in that loop
(and let the Table-1 capability benchmark assert that their assumption set is
empty) without duplicating any algorithmic code.
"""

from __future__ import annotations

from typing import Sequence

from repro._rng import RngLike
from repro.baselines.base import BaselineEstimator
from repro.core import estimate_iqr, estimate_mean, estimate_variance

__all__ = ["UniversalMean", "UniversalVariance", "UniversalIQR"]


class UniversalMean(BaselineEstimator):
    """Adapter for :func:`repro.core.estimate_mean` (Algorithm 8) — no assumptions."""

    name = "universal_mean"
    target = "mean"
    assumptions = frozenset()
    privacy = "pure"
    reference = "this paper (Dong & Yi 2023)"

    def __init__(self, beta: float = 1.0 / 3.0) -> None:
        self.beta = beta

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        return estimate_mean(values, epsilon, self.beta, rng).mean


class UniversalVariance(BaselineEstimator):
    """Adapter for :func:`repro.core.estimate_variance` (Algorithm 9) — no assumptions."""

    name = "universal_variance"
    target = "variance"
    assumptions = frozenset()
    privacy = "pure"
    reference = "this paper (Dong & Yi 2023)"

    def __init__(self, beta: float = 1.0 / 3.0) -> None:
        self.beta = beta

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        return estimate_variance(values, epsilon, self.beta, rng).variance


class UniversalIQR(BaselineEstimator):
    """Adapter for :func:`repro.core.estimate_iqr` (Algorithm 10) — no assumptions."""

    name = "universal_iqr"
    target = "iqr"
    assumptions = frozenset()
    privacy = "pure"
    reference = "this paper (Dong & Yi 2023)"

    def __init__(self, beta: float = 1.0 / 3.0) -> None:
        self.beta = beta

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        return estimate_iqr(values, epsilon, self.beta, rng).iqr
