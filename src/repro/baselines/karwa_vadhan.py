"""Karwa-Vadhan style Gaussian estimators under assumptions A1/A2/A3 ([KV18]).

[KV18] estimate a Gaussian mean under pure DP in two stages:

1. **Coarse localisation** — partition the assumed range ``[-R, R]`` into bins
   of width ``sigma_max`` (``2 sigma`` in the original; ``sigma_max`` when only
   a range for sigma is known), privately pick the heaviest bin with a noisy
   histogram, which localises the mean to within a couple of bins.
2. **Fine estimation** — clip the data to the located bin padded by
   ``O(sigma_max * sqrt(log n))`` and release the clipped mean with Laplace
   noise.

Their variance estimator similarly localises ``log sigma`` with a noisy
histogram over ``[log sigma_min, log sigma_max]`` built from paired squared
differences, then releases a clipped mean of those differences.

Both estimators *require* A1/A2/A3 — their error degrades linearly with the
looseness of ``R`` (through the number of bins in the first stage, which
inflates the required sample size ``n ≳ (1/eps) log(R / sigma_min)``), which
is precisely the dependence the universal estimators remove.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import validate_epsilon
from repro.baselines.base import BaselineEstimator
from repro.exceptions import AssumptionRequiredError, InsufficientDataError
from repro.mechanisms.noisy_max import report_noisy_max

__all__ = ["KarwaVadhanGaussianMean", "KarwaVadhanGaussianVariance"]


class KarwaVadhanGaussianMean(BaselineEstimator):
    """[KV18]-style pure-DP Gaussian mean estimator (assumptions A1, A2, A3)."""

    name = "karwa_vadhan_mean"
    target = "mean"
    assumptions = frozenset({"A1", "A2", "A3"})
    privacy = "pure"
    reference = "KV18"

    def __init__(
        self,
        radius: Optional[float] = None,
        sigma_min: Optional[float] = None,
        sigma_max: Optional[float] = None,
    ) -> None:
        if radius is None or sigma_max is None:
            raise AssumptionRequiredError(
                "KarwaVadhanGaussianMean requires the mean range R (A1) and sigma bounds (A2)"
            )
        if radius <= 0 or sigma_max <= 0:
            raise AssumptionRequiredError("R and sigma_max must be positive")
        self.radius = float(radius)
        self.sigma_max = float(sigma_max)
        self.sigma_min = float(sigma_min) if sigma_min is not None else float(sigma_max)

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        epsilon = validate_epsilon(epsilon)
        data = np.asarray(values, dtype=float)
        if data.size < 8:
            raise InsufficientDataError("need at least 8 samples")
        generator = resolve_rng(rng)
        n = data.size

        # Stage 1 (eps/2): locate the mean with a noisy histogram over [-R, R].
        bin_width = self.sigma_max
        edges = np.arange(-self.radius, self.radius + bin_width, bin_width)
        if edges.size < 2:
            edges = np.array([-self.radius, self.radius])
        counts, _ = np.histogram(np.clip(data, -self.radius, self.radius), bins=edges)
        best = report_noisy_max(counts, epsilon / 2.0, generator)
        center = 0.5 * (edges[best] + edges[best + 1])

        # Stage 2 (eps/2): clipped mean around the located bin.
        padding = 4.0 * self.sigma_max * math.sqrt(math.log(max(n, 3)))
        low, high = center - padding, center + padding
        clipped = np.clip(data, low, high)
        sensitivity = (high - low) / n
        return float(np.mean(clipped) + generator.laplace(scale=2.0 * sensitivity / epsilon))


class KarwaVadhanGaussianVariance(BaselineEstimator):
    """[KV18]-style pure-DP Gaussian variance estimator (assumptions A1, A2, A3)."""

    name = "karwa_vadhan_variance"
    target = "variance"
    assumptions = frozenset({"A2", "A3"})
    privacy = "pure"
    reference = "KV18"

    def __init__(
        self, sigma_min: Optional[float] = None, sigma_max: Optional[float] = None
    ) -> None:
        if sigma_min is None or sigma_max is None:
            raise AssumptionRequiredError(
                "KarwaVadhanGaussianVariance requires sigma_min and sigma_max (assumption A2)"
            )
        if not 0 < sigma_min <= sigma_max:
            raise AssumptionRequiredError(
                f"need 0 < sigma_min <= sigma_max, got {sigma_min}, {sigma_max}"
            )
        self.sigma_min = float(sigma_min)
        self.sigma_max = float(sigma_max)

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        epsilon = validate_epsilon(epsilon)
        data = np.asarray(values, dtype=float)
        if data.size < 8:
            raise InsufficientDataError("need at least 8 samples")
        generator = resolve_rng(rng)
        n = data.size

        permuted = generator.permutation(data)
        n_pairs = permuted.size // 2
        paired = 0.5 * (permuted[: 2 * n_pairs : 2] - permuted[1 : 2 * n_pairs : 2]) ** 2

        # Stage 1 (eps/2): locate log2(sigma^2) with a noisy histogram over
        # [2 log2 sigma_min, 2 log2 sigma_max].
        log_low = 2.0 * math.log2(self.sigma_min)
        log_high = 2.0 * math.log2(self.sigma_max) + 1.0
        edges = np.arange(log_low, log_high + 1.0, 1.0)
        if edges.size < 2:
            edges = np.array([log_low, log_high])
        positive = paired[paired > 0]
        if positive.size == 0:
            positive = np.array([self.sigma_min**2])
        logs = np.clip(np.log2(positive), log_low, log_high - 1e-9)
        counts, _ = np.histogram(logs, bins=edges)
        best = report_noisy_max(counts, epsilon / 2.0, generator)
        sigma2_guess = 2.0 ** (0.5 * (edges[best] + edges[best + 1]))

        # Stage 2 (eps/2): clipped mean of the paired statistic.
        ceiling = 4.0 * sigma2_guess * math.log(max(n, 3))
        clipped = np.clip(paired, 0.0, ceiling)
        sensitivity = ceiling / n_pairs
        return float(np.mean(clipped) + generator.laplace(scale=2.0 * sensitivity / epsilon))
