"""Baseline estimators from prior work, re-implemented for comparison benches.

Each baseline declares the assumptions it needs (A1: bounded mean range,
A2: bounded variance range / moment bound, A3: distribution family) and the
privacy model it satisfies, so the Table-1 capability benchmark can verify
programmatically that only the universal estimators of this paper run without
any of them.
"""

from repro.baselines.base import BaselineEstimator, describe_baselines
from repro.baselines.bounded_laplace import BoundedLaplaceMean, BoundedLaplaceVariance
from repro.baselines.coinpress import CoinPressMean
from repro.baselines.dwork_lei_iqr import DworkLeiIQR
from repro.baselines.finite_domain import FiniteDomainLaplaceMean
from repro.baselines.karwa_vadhan import KarwaVadhanGaussianMean, KarwaVadhanGaussianVariance
from repro.baselines.ksu_heavy_tailed import KSUHeavyTailedMean
from repro.baselines.nonprivate import (
    MidRangeMean,
    SampleIQR,
    SampleMean,
    SampleVariance,
)
from repro.baselines.universal_adapters import (
    UniversalIQR,
    UniversalMean,
    UniversalVariance,
)

__all__ = [
    "BaselineEstimator",
    "describe_baselines",
    "SampleMean",
    "SampleVariance",
    "SampleIQR",
    "MidRangeMean",
    "BoundedLaplaceMean",
    "BoundedLaplaceVariance",
    "FiniteDomainLaplaceMean",
    "KarwaVadhanGaussianMean",
    "KarwaVadhanGaussianVariance",
    "CoinPressMean",
    "KSUHeavyTailedMean",
    "DworkLeiIQR",
    "UniversalMean",
    "UniversalVariance",
    "UniversalIQR",
]
