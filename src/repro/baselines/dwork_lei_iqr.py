"""Dwork-Lei propose-test-release IQR estimator ([DL09], approximate DP only).

Before this paper, the only universal (assumption-free) private scale
estimator was the propose-test-release (PTR) algorithm of Dwork and Lei.  PTR
fundamentally cannot give pure DP: with probability ``delta`` the stability
test passes even though the instance is unstable, so the guarantee is
``(eps, delta)``-DP.  The utility side (equation (13) of the paper) has a
privacy term whose convergence rate is only ``alpha ∝ IQR / (eps log n)``
because the released value is resolved on a grid whose resolution is a fixed
fraction of the (log-discretized) scale, rather than shrinking like ``1/n``.

This implementation follows the standard simplified PTR recipe:

1. compute the empirical IQR and its dyadic scale ``s = 2^{ceil(log2 IQR)}``;
2. compute the *distance to instability* — the number of records that must
   change before the dyadic scale changes;
3. add Laplace(1/eps) noise to that distance and compare against
   ``log(1/delta)/eps``; if the test fails, refuse to answer;
4. otherwise release the empirical IQR plus Laplace noise at scale
   ``s / (eps * log2(n))``, i.e. resolution proportional to the scale over
   ``log n`` — matching the convergence-rate shape quoted in the paper.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import validate_epsilon
from repro.baselines.base import BaselineEstimator
from repro.dataview import DatasetView
from repro.exceptions import InsufficientDataError, MechanismError, PrivacyParameterError

__all__ = ["DworkLeiIQR"]


class DworkLeiIQR(BaselineEstimator):
    """Propose-test-release IQR estimator; universal but only (eps, delta)-DP."""

    name = "dwork_lei_iqr"
    target = "iqr"
    assumptions = frozenset()
    privacy = "approx"
    reference = "DL09"

    def __init__(self, delta: float = 1e-6) -> None:
        if not 0.0 < delta < 1.0:
            raise PrivacyParameterError(f"delta must lie in (0, 1), got {delta}")
        self.delta = float(delta)

    @staticmethod
    def _empirical_iqr(sorted_data: np.ndarray, shift_low: int = 0, shift_high: int = 0) -> float:
        n = sorted_data.size
        low_rank = int(np.clip(n // 4 - 1 + shift_low, 0, n - 1))
        high_rank = int(np.clip((3 * n) // 4 - 1 + shift_high, 0, n - 1))
        return float(sorted_data[high_rank] - sorted_data[low_rank])

    def _distance_to_instability(self, sorted_data: np.ndarray, scale: float) -> int:
        """Smallest t such that moving the quartile ranks by t changes the dyadic scale.

        Reference implementation: an explicit scan over the shift ``t``.
        Plain-array callers take this path so the pre-refactor execution is
        preserved exactly; the sketch path uses the vectorised equivalent
        below (same comparisons, same result — pinned by tests).
        """
        n = sorted_data.size
        for t in range(1, n // 4):
            widened = self._empirical_iqr(sorted_data, shift_low=-t, shift_high=t)
            narrowed = self._empirical_iqr(sorted_data, shift_low=t, shift_high=-t)
            if widened > 2.0 * scale or narrowed <= 0.5 * scale * 0.5:
                return t - 1
        return n // 4

    def _distance_to_instability_vectorised(
        self, sorted_data: np.ndarray, scale: float
    ) -> int:
        """Vectorised twin of :meth:`_distance_to_instability`.

        Evaluates every shift's widened/narrowed IQR in one indexed pass and
        returns the first hit; the comparisons (including the literal
        ``0.5 * scale * 0.5`` expression) are identical float operations, so
        the result matches the scan bit-for-bit.
        """
        n = sorted_data.size
        shifts = np.arange(1, n // 4)
        if shifts.size == 0:
            return n // 4
        low_base = n // 4 - 1
        high_base = (3 * n) // 4 - 1
        widened = (
            sorted_data[np.clip(high_base + shifts, 0, n - 1)]
            - sorted_data[np.clip(low_base - shifts, 0, n - 1)]
        )
        narrowed = (
            sorted_data[np.clip(high_base - shifts, 0, n - 1)]
            - sorted_data[np.clip(low_base + shifts, 0, n - 1)]
        )
        hits = (widened > 2.0 * scale) | (narrowed <= 0.5 * scale * 0.5)
        first = int(np.argmax(hits))
        if not hits[first]:
            return n // 4
        return int(shifts[first]) - 1

    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        """Release the IQR or raise :class:`MechanismError` if the PTR test fails."""
        epsilon = validate_epsilon(epsilon)
        # Sketch fast path: a DatasetView's ``sorted`` sketch replaces the
        # per-call full sort, and the instability scan runs vectorised.
        # Plain arrays keep the exact legacy execution.
        view = values if isinstance(values, DatasetView) else None
        if view is not None:
            data = view.sorted_values
        else:
            data = np.sort(np.asarray(values, dtype=float))
        if data.size < 8:
            raise InsufficientDataError("need at least 8 samples")
        generator = resolve_rng(rng)
        n = data.size

        sample_iqr = self._empirical_iqr(data)
        if sample_iqr <= 0:
            raise MechanismError("empirical IQR is zero; PTR cannot certify stability")
        scale = 2.0 ** math.ceil(math.log2(sample_iqr))

        if view is not None:
            distance = self._distance_to_instability_vectorised(data, scale)
        else:
            distance = self._distance_to_instability(data, scale)
        noisy_distance = distance + generator.laplace(scale=1.0 / (epsilon / 2.0))
        if noisy_distance < math.log(1.0 / self.delta) / (epsilon / 2.0):
            raise MechanismError(
                "propose-test-release stability test failed; no answer released"
            )

        noise_scale = scale / ((epsilon / 2.0) * math.log2(max(n, 4)))
        return float(sample_iqr + generator.laplace(scale=noise_scale))
