"""Common interface for baseline estimators.

A baseline is a single-parameter point estimator with an explicit declaration
of the prior-knowledge assumptions it consumes:

* ``A1`` — a bound ``R`` on the magnitude of the mean;
* ``A2`` — bounds on the variance (``sigma_min``/``sigma_max``) or a moment
  bound ``mu_k_bound``;
* ``A3`` — a distribution-family assumption needed for its utility analysis.

The universal estimators of the paper are wrapped by the adapters in
``repro.baselines.universal_adapters`` with an empty assumption set, which is
what the Table-1 capability benchmark checks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence

import numpy as np

from repro._rng import RngLike

__all__ = ["BaselineEstimator", "BaselineDescription", "describe_baselines"]


@dataclass(frozen=True)
class BaselineDescription:
    """Static description of a baseline for capability tables."""

    name: str
    target: str
    assumptions: FrozenSet[str]
    privacy: str
    reference: str


class BaselineEstimator(abc.ABC):
    """A (possibly private) point estimator for a single statistical parameter."""

    #: Short name used in benchmark tables.
    name: str = "baseline"
    #: Which parameter this estimates: ``"mean"``, ``"variance"`` or ``"iqr"``.
    target: str = "mean"
    #: Subset of {"A1", "A2", "A3"} this estimator requires.
    assumptions: FrozenSet[str] = frozenset()
    #: ``"pure"`` (ε-DP), ``"approx"`` ((ε, δ)-DP) or ``"none"`` (non-private).
    privacy: str = "none"
    #: Citation key of the work this baseline reproduces.
    reference: str = ""

    @abc.abstractmethod
    def estimate(self, values: Sequence[float], epsilon: float, rng: RngLike = None) -> float:
        """Return the estimate computed from ``values`` under budget ``epsilon``.

        Non-private baselines ignore ``epsilon``.
        """

    def describe(self) -> BaselineDescription:
        """Return the static capability description of this estimator."""
        return BaselineDescription(
            name=self.name,
            target=self.target,
            assumptions=self.assumptions,
            privacy=self.privacy,
            reference=self.reference,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, target={self.target!r})"


def describe_baselines(estimators: Iterable[BaselineEstimator]) -> List[BaselineDescription]:
    """Collect the capability descriptions of a set of estimators."""
    return [est.describe() for est in estimators]
