"""Non-private reference estimators (the classical sample statistics).

These provide the sampling-error floor against which all private estimators
are compared: no private estimator can beat the empirical estimator on
expectation, and the paper's headline claim is that its universal private
estimators add only a ~``1/(eps n)`` term on top of this floor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._rng import RngLike
from repro.baselines.base import BaselineEstimator
from repro.dataview import DatasetView
from repro.exceptions import InsufficientDataError

__all__ = ["SampleMean", "SampleVariance", "SampleIQR", "MidRangeMean"]


def _as_array(values: Sequence[float]) -> np.ndarray:
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("dataset is empty")
    return data


class SampleMean(BaselineEstimator):
    """The empirical mean ``(1/n) sum X_i`` (non-private)."""

    name = "sample_mean"
    target = "mean"
    assumptions = frozenset()
    privacy = "none"
    reference = "classical"

    def estimate(self, values: Sequence[float], epsilon: float = 0.0, rng: RngLike = None) -> float:
        return float(np.mean(_as_array(values)))


class SampleVariance(BaselineEstimator):
    """The empirical variance ``(1/n) sum (X_i - mean)^2`` (non-private)."""

    name = "sample_variance"
    target = "variance"
    assumptions = frozenset()
    privacy = "none"
    reference = "classical"

    def estimate(self, values: Sequence[float], epsilon: float = 0.0, rng: RngLike = None) -> float:
        return float(np.var(_as_array(values)))


class SampleIQR(BaselineEstimator):
    """The empirical interquartile range ``X_{3n/4} - X_{n/4}`` (non-private).

    Grid drivers that evaluate this floor over many trials of the *same*
    dataset should wrap the data in a :class:`~repro.dataview.DatasetView`
    once — the per-call sort then comes off the view's cached ``sorted``
    sketch instead of being re-derived every trial.
    """

    name = "sample_iqr"
    target = "iqr"
    assumptions = frozenset()
    privacy = "none"
    reference = "classical"

    def estimate(self, values: Sequence[float], epsilon: float = 0.0, rng: RngLike = None) -> float:
        if isinstance(values, DatasetView):
            data = values.sorted_values
            if data.size == 0:
                raise InsufficientDataError("dataset is empty")
        else:
            data = np.sort(_as_array(values))
        n = data.size
        low = data[max(n // 4 - 1, 0)]
        high = data[min((3 * n) // 4 - 1, n - 1)]
        return float(high - low)


class MidRangeMean(BaselineEstimator):
    """The mid-range ``(X_1 + X_n) / 2`` (non-private).

    The paper's introduction uses this as the canonical example of a
    distribution-specific estimator: it converges at rate ``O(1/n)`` for the
    uniform distribution but fails badly for Gaussians, motivating universal
    estimators.
    """

    name = "mid_range"
    target = "mean"
    assumptions = frozenset({"A3"})
    privacy = "none"
    reference = "classical (uniform-specific)"

    def estimate(self, values: Sequence[float], epsilon: float = 0.0, rng: RngLike = None) -> float:
        data = _as_array(values)
        return float(0.5 * (np.min(data) + np.max(data)))
