"""``repro.estimators`` — the unified estimator-spec registry.

One pluggable API from estimator to HTTP: an :class:`EstimatorSpec` declares
a statistic kind (runner, typed param schema, exact reservation-epsilon
factor, minimum record count, result shape), :func:`register_estimator`
publishes it process-wide, and every serving layer — the query planner,
both HTTP front-ends (``GET /kinds``), the CLI, the declarative serving
config and the capability matrix — resolves kinds through this registry
instead of parallel hardcoded tables.

Importing this package registers

* the five built-in empirical kinds (``mean``, ``variance``, ``iqr``,
  ``quantile``, ``multivariate_mean``) exactly as the service served them
  before the registry existed (bit-for-bit identical answers and cache
  keys), and
* every *private* :class:`~repro.baselines.base.BaselineEstimator` as a
  ``baseline.<name>`` kind through the generic adapter in
  :mod:`repro.estimators.baselines`, with conservative exact reservation
  factors derived from its ``describe()`` metadata.

Adding a new servable statistic is one decorator::

    from repro.estimators import ParamField, register_estimator

    @register_estimator("trimmed_mean", reservation=1.0, min_records=8,
                        params=(ParamField("trim", minimum=0.0, maximum=0.5,
                                           default=0.1),))
    def run_trimmed_mean(data, generator, ledger, *, epsilon, beta, trim):
        ...

and the kind is immediately queryable over HTTP, refusable by budget,
cacheable, grid-sweepable and listed by ``repro query``/``GET /kinds``.

A spec may additionally declare ``needs=("sorted", ...)`` — dataset sketches
the runner reads off the :class:`~repro.dataview.DatasetView` it receives
instead of recomputing per query (the registry materialises declared
sketches once at dataset registration), and ``batchable=False`` to opt out
of the executor's grouped same-kind execution.  Runners that ignore the
view entirely keep working: a ``DatasetView`` is array-like, so plain-array
code sees the raw values unchanged.
Register custom kinds at import time (or before an engine pool's first
parallel call): pool workers rebuild the registry by import, so a kind
registered after the workers forked is served on the serial path but
answered ``failed`` on the pooled path (see
:mod:`repro.estimators.registry`).
"""

from repro.dataview import SKETCH_KINDS, DatasetView, as_view
from repro.estimators.registry import (
    UnknownKindError,
    get_estimator,
    iter_estimators,
    kind_catalog,
    register,
    register_estimator,
    registered_kinds,
    unregister,
)
from repro.estimators.spec import EstimatorSpec, ParamField, ParamValidationError

# Import-for-effect: populate the registry with the built-in empirical kinds
# and the adapted private baselines.
import repro.estimators.builtin  # noqa: E402,F401
import repro.estimators.baselines as _baseline_module  # noqa: E402

from repro.estimators.baselines import baseline_kind_name, register_baseline

__all__ = [
    "DatasetView",
    "SKETCH_KINDS",
    "as_view",
    "EstimatorSpec",
    "ParamField",
    "ParamValidationError",
    "UnknownKindError",
    "register",
    "register_estimator",
    "register_baseline",
    "baseline_kind_name",
    "unregister",
    "get_estimator",
    "registered_kinds",
    "iter_estimators",
    "kind_catalog",
]
