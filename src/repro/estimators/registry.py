"""Process-wide estimator-spec registry: one lookup from kind to spec.

Every layer of the serving stack — the query planner, both HTTP front-ends,
the CLI, the serving config and the capability matrix — resolves statistic
kinds through this registry instead of private parallel tables, so adding a
kind is *one* :func:`register_estimator` call (usually as a decorator)::

    @register_estimator("mean", reservation=1.0, min_records=8)
    def _run_mean(data, generator, ledger, *, epsilon, beta):
        return float(estimate_mean(data, epsilon, beta, generator, ledger=ledger).mean)

The registry is import-populated (importing :mod:`repro.estimators` registers
the built-in empirical kinds and the baseline adapters) and thread-safe; the
engine's worker processes repopulate it by the same import, so specs never
cross process boundaries — only kind names do.  The corollary: a kind
registered *at runtime* is visible to engine-pool workers only if it is
registered before the pool forks (the pool forks lazily on its first
parallel call).  Registering after that point serves the kind fine on the
serial path but fails it with a structured ``failed`` answer on the pooled
path — put custom ``register_estimator`` calls at import time of a module
the workers also import.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.exceptions import DomainError
from repro.estimators.spec import EstimatorSpec, ParamField

__all__ = [
    "UnknownKindError",
    "register",
    "register_estimator",
    "unregister",
    "get_estimator",
    "registered_kinds",
    "iter_estimators",
    "kind_catalog",
]


class UnknownKindError(DomainError):
    """A query named a kind no spec is registered for.

    Carries the registered kinds at raise time so front-ends can hand the
    client the authoritative list instead of a hardcoded copy that drifts.
    """

    def __init__(self, kind: str, kinds: Tuple[str, ...]):
        super().__init__(
            f"unknown query kind {kind!r}; expected one of {list(kinds)}"
        )
        self.kind = kind
        self.kinds = kinds


_LOCK = threading.Lock()
_REGISTRY: Dict[str, EstimatorSpec] = {}


def register(spec: EstimatorSpec, *, replace: bool = False) -> EstimatorSpec:
    """Add ``spec`` to the process-wide registry (``replace=True`` to override)."""
    with _LOCK:
        if spec.name in _REGISTRY and not replace:
            raise DomainError(f"estimator kind {spec.name!r} is already registered")
        _REGISTRY[spec.name] = spec
    return spec


def register_estimator(
    name: str,
    *,
    reservation: float = 1.0,
    min_records: int = 8,
    params: Tuple[ParamField, ...] = (),
    scalar: bool = True,
    dimension: str = "univariate",
    needs: Tuple[str, ...] = (),
    batchable: bool = True,
    check: Optional[Callable[[Dict[str, Any]], None]] = None,
    description: str = "",
    extra: Optional[Mapping[str, Any]] = None,
    replace: bool = False,
) -> Callable:
    """Decorator registering a runner as the spec for kind ``name``.

    The decorated callable keeps working as a plain function; the spec it was
    wrapped into is reachable via :func:`get_estimator`.
    """

    def decorate(runner: Callable) -> Callable:
        register(
            EstimatorSpec(
                name=name,
                runner=runner,
                reservation=reservation,
                min_records=min_records,
                params=tuple(params),
                scalar=scalar,
                dimension=dimension,
                needs=tuple(needs),
                batchable=batchable,
                check=check,
                description=description,
                extra=dict(extra or {}),
            ),
            replace=replace,
        )
        return runner

    return decorate


def unregister(name: str) -> None:
    """Remove kind ``name`` (primarily for tests exercising custom specs)."""
    with _LOCK:
        if name not in _REGISTRY:
            raise UnknownKindError(name, tuple(sorted(_REGISTRY)))
        del _REGISTRY[name]


def get_estimator(name: str) -> EstimatorSpec:
    """The spec registered under ``name``; raises :class:`UnknownKindError`."""
    with _LOCK:
        spec = _REGISTRY.get(name)
        kinds = tuple(sorted(_REGISTRY)) if spec is None else ()
    if spec is None:
        raise UnknownKindError(name, kinds)
    return spec


def registered_kinds() -> List[str]:
    """Sorted names of every registered kind."""
    with _LOCK:
        return sorted(_REGISTRY)


def iter_estimators() -> List[EstimatorSpec]:
    """Snapshot of every registered spec, sorted by name."""
    with _LOCK:
        return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def kind_catalog() -> Dict[str, Dict[str, Any]]:
    """JSON-safe catalogue of every kind (the ``GET /kinds`` document body)."""
    return {spec.name: spec.to_json() for spec in iter_estimators()}
