"""Declarative estimator specifications: the unit of the pluggable registry.

An :class:`EstimatorSpec` is everything the serving stack needs to know about
one statistic kind *without* executing it:

* the **runner** — ``(data, generator, ledger, *, epsilon, beta, **params)``
  producing a float (scalar kinds) or a tuple of floats (vector kinds);
* a **typed parameter schema** (:class:`ParamField`): per-parameter type,
  default, bounds and canonicalisation, so malformed requests are rejected
  *before any privacy budget is touched* and two spellings of the same
  request canonicalise to the same parameter set;
* the exact **reservation factor** — an upper bound on the ratio between the
  epsilon the runner's ledger records and the epsilon it was asked for, which
  is what the budget manager reserves before execution;
* the **minimum record count** the estimator accepts, and the **shape** of
  its result (``scalar``, ``dimension``) so dataset compatibility is checked
  up-front.

Specs are registered process-wide (see :mod:`repro.estimators.registry`) and
drive the query planner, both HTTP front-ends, the CLI, the serving config
and the capability matrix from a single source of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.dataview import validate_needs
from repro.exceptions import DomainError

__all__ = ["ParamField", "EstimatorSpec", "ParamValidationError"]


class ParamValidationError(DomainError):
    """A query parameter failed its spec's validation (rejected before any spend)."""


#: Parameter types a :class:`ParamField` can declare.
_PARAM_TYPES = ("float", "int", "levels")


@dataclass(frozen=True)
class ParamField:
    """One typed parameter of an estimator spec.

    ``type`` is one of ``"float"``, ``"int"`` or ``"levels"`` (a non-empty
    tuple of floats strictly inside (0, 1), the quantile-levels shape).
    ``minimum``/``maximum`` bound numeric values *exclusively* when
    ``exclusive=True`` (the common "strictly positive" case) and inclusively
    otherwise; ``max_exclusive`` overrides the exclusivity of the maximum
    alone (e.g. ``delta > 0`` strict but ``delta <= cap`` inclusive).
    ``example`` is a value that validates — used by conformance tests, docs
    and the ``GET /kinds`` catalogue.
    """

    name: str
    type: str = "float"
    required: bool = False
    default: Any = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    exclusive: bool = False
    max_exclusive: Optional[bool] = None
    example: Any = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.type not in _PARAM_TYPES:
            raise DomainError(
                f"param {self.name!r}: type must be one of {_PARAM_TYPES}, "
                f"got {self.type!r}"
            )
        if self.required and self.default is not None:
            raise DomainError(
                f"param {self.name!r}: a required parameter cannot carry a default"
            )

    # -- canonicalisation ---------------------------------------------------
    def canonicalise(self, value: Any, *, kind: str) -> Any:
        """Validate ``value`` and return its canonical form.

        Floats canonicalise through ``float()`` (so ``2`` and ``2.0`` share a
        cache key), ints reject non-integral values, and levels become a
        tuple of floats in declaration order.
        """
        where = f"{kind} parameter {self.name!r}"
        if self.type == "levels":
            if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
                raise ParamValidationError(
                    f"{where} must be a list of numbers, got {value!r}"
                )
            try:
                levels = tuple(float(level) for level in value)
            except (TypeError, ValueError):
                raise ParamValidationError(
                    f"{where} must be a list of numbers, got {value!r}"
                ) from None
            if not levels:
                raise ParamValidationError(f"{where} needs at least one level")
            if any(not 0.0 < level < 1.0 for level in levels):
                raise ParamValidationError(
                    f"{where} must lie strictly between 0 and 1, got {levels}"
                )
            return levels
        if self.type == "int":
            if isinstance(value, bool):
                raise ParamValidationError(f"{where} must be an integer, got {value!r}")
            try:
                number = float(value)
            except (TypeError, ValueError):
                raise ParamValidationError(
                    f"{where} must be an integer, got {value!r}"
                ) from None
            if not number.is_integer():
                raise ParamValidationError(f"{where} must be an integer, got {value!r}")
            result: Any = int(number)
        else:
            if isinstance(value, bool):
                raise ParamValidationError(f"{where} must be a number, got {value!r}")
            try:
                result = float(value)
            except (TypeError, ValueError):
                raise ParamValidationError(
                    f"{where} must be a number, got {value!r}"
                ) from None
            if not math.isfinite(result):
                raise ParamValidationError(f"{where} must be finite, got {result!r}")
        if self.minimum is not None:
            if result < self.minimum or (self.exclusive and result == self.minimum):
                bound = ">" if self.exclusive else ">="
                raise ParamValidationError(
                    f"{where} must be {bound} {self.minimum:g}, got {result!r}"
                )
        if self.maximum is not None:
            strict = self.exclusive if self.max_exclusive is None else self.max_exclusive
            if result > self.maximum or (strict and result == self.maximum):
                bound = "<" if strict else "<="
                raise ParamValidationError(
                    f"{where} must be {bound} {self.maximum:g}, got {result!r}"
                )
        return result

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe description (the ``GET /kinds`` catalogue entry)."""
        doc: Dict[str, Any] = {"type": self.type, "required": self.required}
        if self.default is not None:
            doc["default"] = (
                list(self.default) if isinstance(self.default, tuple) else self.default
            )
        if self.minimum is not None:
            doc["minimum"] = self.minimum
        if self.maximum is not None:
            doc["maximum"] = self.maximum
        if self.exclusive:
            doc["exclusive"] = True
        if self.max_exclusive is not None:
            doc["max_exclusive"] = self.max_exclusive
        if self.example is not None:
            doc["example"] = (
                list(self.example) if isinstance(self.example, tuple) else self.example
            )
        if self.description:
            doc["description"] = self.description
        return doc


#: Runner signature: ``(data, generator, ledger, *, epsilon, beta, **params)``.
RunnerFn = Callable[..., Any]


@dataclass(frozen=True)
class EstimatorSpec:
    """One servable statistic kind, declaratively described.

    Attributes
    ----------
    name:
        The query-kind string clients address (``"mean"``,
        ``"baseline.coinpress_mean"``, ...).
    runner:
        ``(data, generator, ledger, *, epsilon, beta, **params) -> value``.
        The ledger must record every epsilon the release actually spends.
    reservation:
        Exact upper bound on ``ledger spend / requested epsilon`` — what the
        budget manager reserves before execution (never a heuristic).
    min_records:
        Fewest records the estimator accepts; smaller datasets are refused
        before any budget is reserved or spent.
    params:
        Typed parameter schema beyond the universal ``epsilon``/``beta``.
    scalar:
        ``True`` for a float result, ``False`` for a tuple of floats.
    dimension:
        ``"univariate"`` (1-D datasets) or ``"multivariate"`` ((n, d)).
    needs:
        Declarative sketch requirements (subset of
        :data:`repro.dataview.SKETCH_KINDS`, e.g. ``("sorted",)``).  The
        service registry materialises the union of the declared needs once
        at dataset registration and runners receive a
        :class:`~repro.dataview.DatasetView` carrying them; runners must
        treat the sketch as *the* sorting site (lint rule REP007) and must
        produce bit-for-bit identical answers on plain arrays.
    batchable:
        Whether the executor may group admitted same-kind queries against
        one dataset into a single vectorized engine cell (default).  Kinds
        whose runner keeps per-query process state can opt out; they fall
        back to one cell per query.
    check:
        Optional cross-parameter validation hook run on the canonical
        parameter dict (e.g. ``sigma_min <= sigma_max``); raise
        :class:`ParamValidationError` to reject.
    description:
        One-line human description for catalogues and ``GET /kinds``.
    extra:
        Free-form metadata (e.g. the wrapped baseline class) for
        registry-driven tooling such as the capability matrix.
    """

    name: str
    runner: RunnerFn = field(repr=False, compare=False)
    reservation: float = 1.0
    min_records: int = 8
    params: Tuple[ParamField, ...] = ()
    scalar: bool = True
    dimension: str = "univariate"
    needs: Tuple[str, ...] = ()
    batchable: bool = True
    check: Optional[Callable[[Dict[str, Any]], None]] = field(
        default=None, repr=False, compare=False
    )
    description: str = ""
    extra: Mapping[str, Any] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise DomainError("estimator spec needs a non-empty name")
        if not (self.reservation > 0.0 and math.isfinite(self.reservation)):
            raise DomainError(
                f"spec {self.name!r}: reservation factor must be positive and "
                f"finite, got {self.reservation!r}"
            )
        if self.min_records < 1:
            raise DomainError(
                f"spec {self.name!r}: min_records must be >= 1, got {self.min_records}"
            )
        if self.dimension not in ("univariate", "multivariate"):
            raise DomainError(
                f"spec {self.name!r}: dimension must be 'univariate' or "
                f"'multivariate', got {self.dimension!r}"
            )
        object.__setattr__(
            self,
            "needs",
            validate_needs(self.needs, where=f"spec {self.name!r}"),
        )
        names = [param.name for param in self.params]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise DomainError(f"spec {self.name!r}: duplicate params {duplicates}")
        if any(param.name in ("epsilon", "beta") for param in self.params):
            raise DomainError(
                f"spec {self.name!r}: epsilon and beta are universal query "
                "fields, not spec params"
            )
        for param in self.params:
            if param.name == "levels" and param.type != "levels":
                # "levels" is the wire-compat alias the Query model mirrors
                # into a tuple; a scalar param under that name would crash
                # the mirror and silently vanish from the cache key.
                raise DomainError(
                    f"spec {self.name!r}: a param named 'levels' must have "
                    f"type 'levels', got {param.type!r}"
                )

    # -- parameters ---------------------------------------------------------
    def validate_params(self, raw: Mapping[str, Any]) -> Dict[str, Any]:
        """Canonicalise ``raw`` against the schema (the pre-admission gate).

        Unknown names are rejected, required parameters enforced, defaults
        filled in, every value canonicalised, and the cross-parameter
        ``check`` hook run — all without touching any data or budget.
        """
        fields = {param.name: param for param in self.params}
        unknown = sorted(set(raw) - set(fields))
        if unknown:
            expected = sorted(fields) or "none"
            raise ParamValidationError(
                f"unknown parameter(s) {unknown} for kind {self.name!r} "
                f"(expected: {expected})"
            )
        canonical: Dict[str, Any] = {}
        for name, param in fields.items():
            if name in raw and raw[name] is not None:
                canonical[name] = param.canonicalise(raw[name], kind=self.name)
            elif param.required:
                raise ParamValidationError(
                    f"kind {self.name!r} requires the parameter {name!r}"
                )
            elif param.default is not None:
                canonical[name] = param.canonicalise(param.default, kind=self.name)
        if self.check is not None:
            self.check(canonical)
        return canonical

    def example_params(self) -> Dict[str, Any]:
        """A parameter set that validates: every field with an ``example``
        contributes it, defaults fill the rest — what conformance tests, the
        capability matrix and docs use to exercise a kind."""
        raw = {
            param.name: param.example
            for param in self.params
            if param.example is not None
        }
        return self.validate_params(raw)

    # -- execution ----------------------------------------------------------
    def run(self, data, generator, ledger, *, epsilon, beta, **params):
        """Execute the release: delegate to the runner."""
        return self.runner(data, generator, ledger, epsilon=epsilon, beta=beta, **params)

    def estimator_fn(
        self, epsilon: float, beta: float = 1.0 / 3.0, **params: Any
    ) -> Callable:
        """Bind to an ``(data, rng) -> value`` callable for the analysis layer.

        The returned closure matches the :data:`repro.analysis.trials.EstimatorFn`
        signature, so any registered kind drops into :func:`run_trials` /
        :class:`StatisticalCell` grids unchanged.  Parameters validate now
        (fail fast), the ledger is per-call and discarded.
        """
        from repro.accounting import PrivacyLedger

        canonical = self.validate_params(params)

        def estimate(data, generator):
            return self.run(
                data, generator, PrivacyLedger(), epsilon=epsilon, beta=beta, **canonical
            )

        return estimate

    def to_json(self) -> Dict[str, Any]:
        """JSON-safe catalogue entry (the ``GET /kinds`` document)."""
        return {
            "name": self.name,
            "reservation": self.reservation,
            "min_records": self.min_records,
            "scalar": self.scalar,
            "dimension": self.dimension,
            "needs": list(self.needs),
            "batchable": self.batchable,
            "description": self.description,
            "params": {param.name: param.to_json() for param in self.params},
        }
