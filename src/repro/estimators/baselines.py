"""Generic adapter: every private `BaselineEstimator` becomes a query kind.

The :class:`~repro.baselines.base.BaselineEstimator` family (CoinPress,
Karwa-Vadhan, KSU heavy-tailed, Dwork-Lei IQR, bounded-Laplace,
finite-domain, ...) predates the service and speaks
``estimate(values, epsilon, rng)`` with constructor-time assumption
parameters.  :func:`register_baseline` wraps any such class into an
:class:`~repro.estimators.spec.EstimatorSpec` whose typed params mirror the
constructor arguments, making the baseline a first-class query kind
(``baseline.<name>``) servable over both HTTP front-ends with full budget
accounting.

Accounting is conservative and exact on the epsilon axis: the reservation
factor is derived from the class's ``describe()`` privacy metadata — every
adapted baseline is a one-shot release of its full nominal epsilon (basic
composition of its internal eps-splits), so the factor is 1.0 and the
adapter charges the full epsilon to the per-query ledger *before* the
estimate runs.  A release that aborts midway (Dwork-Lei's
propose-test-release refusal) has therefore still committed its full
epsilon — an upper bound on the true leakage, never an under-count.

Two deliberate policy edges: non-private baselines (``privacy="none"``) are
*not* servable — releasing an exact statistic cannot be accounted under any
finite epsilon — and the one approximate-DP baseline (Dwork-Lei) is served
with its ``delta`` hard-capped at ``1e-4`` per release, because the service
budget is an epsilon ledger only: deltas compose additively across releases
and are **not** drawn down by the budget manager, so the cap (together with
the epsilon cap bounding the number of releases) keeps the accumulated
delta negligible rather than silently unbounded.
"""

from __future__ import annotations

from typing import Optional, Tuple, Type

from repro.baselines import (
    BaselineEstimator,
    BoundedLaplaceMean,
    BoundedLaplaceVariance,
    CoinPressMean,
    DworkLeiIQR,
    FiniteDomainLaplaceMean,
    KarwaVadhanGaussianMean,
    KarwaVadhanGaussianVariance,
    KSUHeavyTailedMean,
)
from repro.estimators.registry import register
from repro.estimators.spec import EstimatorSpec, ParamField, ParamValidationError
from repro.exceptions import ReproError

__all__ = ["register_baseline", "baseline_kind_name"]


def baseline_kind_name(cls: Type[BaselineEstimator]) -> str:
    """The query-kind string a baseline class registers under."""
    return f"baseline.{cls.name}"


def register_baseline(
    cls: Type[BaselineEstimator],
    *,
    params: Tuple[ParamField, ...] = (),
    min_records: int = 8,
    needs: Tuple[str, ...] = (),
    description: Optional[str] = None,
    replace: bool = False,
) -> EstimatorSpec:
    """Register ``cls`` as the query kind ``baseline.<cls.name>``.

    ``params`` mirror the constructor keywords; validation constructs a
    throwaway instance so assumption errors (missing/inconsistent bounds)
    surface as :class:`ParamValidationError` *before* any budget is touched.
    ``needs`` declares the dataset sketches the class's ``estimate`` reads
    off a :class:`~repro.dataview.DatasetView` (e.g. ``("sorted",)`` for
    Dwork-Lei, whose per-call sort dominated its cold cost).
    """
    if cls.privacy not in ("pure", "approx"):
        raise ParamValidationError(
            f"baseline {cls.name!r} is not private (privacy={cls.privacy!r}); "
            "it cannot be served under a privacy budget"
        )

    def check(canonical: dict) -> None:
        try:
            cls(**canonical)
        except ReproError as exc:
            raise ParamValidationError(
                f"kind {baseline_kind_name(cls)!r}: {exc}"
            ) from exc

    def runner(data, generator, ledger, *, epsilon, beta, **kwargs):
        # beta is accepted for wire uniformity; baselines have no per-release
        # failure-probability knob.
        estimator = cls(**kwargs)
        # Charge before running: the baseline spends its full nominal epsilon
        # on a completed release, and an aborted one (PTR refusal) has leaked
        # at most that — committing the full epsilon is the exact upper bound
        # the reservation promised.
        ledger.charge(baseline_kind_name(cls), epsilon)
        return float(estimator.estimate(data, epsilon, generator))

    spec = EstimatorSpec(
        name=baseline_kind_name(cls),
        runner=runner,
        reservation=1.0,
        min_records=min_records,
        params=tuple(params),
        scalar=True,
        dimension="univariate",
        needs=tuple(needs),
        check=check,
        description=description
        if description is not None
        else f"{cls.target} baseline [{cls.reference}] "
        f"(assumptions: {sorted(cls.assumptions) or 'none'})",
        extra={"baseline_cls": cls},
    )
    return register(spec, replace=replace)


# ---------------------------------------------------------------------------
# the shipped private baselines, registered at import time


register_baseline(
    BoundedLaplaceMean,
    params=(
        ParamField(
            "radius", required=True, minimum=0.0, exclusive=True, example=1e6,
            description="A-priori bound R on the mean magnitude (A1)",
        ),
    ),
)

register_baseline(
    BoundedLaplaceVariance,
    params=(
        ParamField(
            "sigma_max", required=True, minimum=0.0, exclusive=True, example=1e2,
            description="A-priori bound on the standard deviation (A2)",
        ),
    ),
)

register_baseline(
    FiniteDomainLaplaceMean,
    params=(
        ParamField(
            "domain_size", type="int", required=True, minimum=1, example=1_000_000,
            description="Domain bound N: data are clipped into [0, N]",
        ),
    ),
)

register_baseline(
    KarwaVadhanGaussianMean,
    params=(
        ParamField(
            "radius", required=True, minimum=0.0, exclusive=True, example=1e6,
            description="Mean range R (A1)",
        ),
        ParamField(
            "sigma_max", required=True, minimum=0.0, exclusive=True, example=1e2,
            description="Upper bound on sigma (A2)",
        ),
        ParamField(
            "sigma_min", minimum=0.0, exclusive=True, example=1e-2,
            description="Lower bound on sigma (defaults to sigma_max)",
        ),
    ),
)

register_baseline(
    KarwaVadhanGaussianVariance,
    params=(
        ParamField(
            "sigma_min", required=True, minimum=0.0, exclusive=True, example=1e-2,
            description="Lower bound on sigma (A2)",
        ),
        ParamField(
            "sigma_max", required=True, minimum=0.0, exclusive=True, example=1e2,
            description="Upper bound on sigma (A2)",
        ),
    ),
)

register_baseline(
    CoinPressMean,
    params=(
        ParamField(
            "radius", required=True, minimum=0.0, exclusive=True, example=1e6,
            description="Initial interval bound R (A1)",
        ),
        ParamField(
            "sigma_max", required=True, minimum=0.0, exclusive=True, example=1e2,
            description="Upper bound on sigma (A2)",
        ),
        ParamField(
            "rounds", type="int", default=3, minimum=1,
            description="Interval-refinement rounds (even epsilon split)",
        ),
    ),
)

register_baseline(
    KSUHeavyTailedMean,
    params=(
        ParamField(
            "radius", required=True, minimum=0.0, exclusive=True, example=1e6,
            description="Mean range R (A1)",
        ),
        ParamField(
            "moment_bound", required=True, minimum=0.0, exclusive=True, example=1e4,
            description="Bound on the k-th central moment (A2)",
        ),
        ParamField(
            "moment_order", type="int", default=2, minimum=2,
            description="Moment order k",
        ),
    ),
)

register_baseline(
    DworkLeiIQR,
    needs=("sorted",),
    params=(
        # The upper bound is a serving policy, not a mechanism constraint:
        # the budget ledger tracks epsilon only, and per-release deltas add
        # up across queries — see the module docstring.
        ParamField(
            "delta", default=1e-6, minimum=0.0, maximum=1e-4,
            exclusive=True, max_exclusive=False,  # 0 < delta <= 1e-4
            description="Approximate-DP failure probability of the PTR test "
            "(capped at 1e-4 per release: deltas compose additively and are "
            "not drawn down by the epsilon budget)",
        ),
    ),
)
