"""The five built-in empirical kinds, ported onto the spec registry.

These are the paper's universal estimators exactly as the service served
them before the registry existed: same runners, same reservation factors,
same minimum record counts — cache keys and answers are bit-for-bit
identical through the registry path.

Reservation factors are exact bounds, not heuristics: variance's ``9/8`` is
attained when sub-sampling amplification degenerates (``eps >= 1``) in its
paired radius probe; every other estimator never exceeds its nominal
epsilon.  Variance needs paired halves, hence twice the base minimum record
count.

The quantile-based kinds (``iqr``, ``quantile``) declare sketch ``needs`` —
their runners read the dataset's cached ``sorted`` / ``sorted_abs`` sketches
through a :class:`~repro.dataview.DatasetView` instead of re-sorting per
query.  The mean/variance kinds keep ``needs=()``: their subsampling and
paired-halves permutations are per-query randomness that no shared sketch
can replace without changing answers.
"""

from __future__ import annotations

from repro.core import (
    estimate_iqr,
    estimate_mean,
    estimate_quantiles,
    estimate_variance,
)
from repro.estimators.registry import register_estimator
from repro.estimators.spec import ParamField
from repro.multivariate import estimate_mean_multivariate

__all__ = []  # import-for-effect module: registration is the product


@register_estimator(
    "mean",
    reservation=1.0,
    min_records=8,
    description="Universal pure-DP mean (Algorithm 8; no domain bounds)",
)
def _run_mean(data, generator, ledger, *, epsilon, beta):
    return float(estimate_mean(data, epsilon, beta, generator, ledger=ledger).mean)


@register_estimator(
    "variance",
    reservation=9.0 / 8.0,
    min_records=16,
    description="Universal pure-DP variance (Algorithm 9; paired halves, "
    "amplified radius probe can record up to 9/8 of the nominal epsilon)",
)
def _run_variance(data, generator, ledger, *, epsilon, beta):
    return float(
        estimate_variance(data, epsilon, beta, generator, ledger=ledger).variance
    )


@register_estimator(
    "iqr",
    reservation=1.0,
    min_records=8,
    needs=("sorted", "sorted_abs"),
    description="Universal pure-DP interquartile range (Algorithm 10)",
)
def _run_iqr(data, generator, ledger, *, epsilon, beta):
    return float(estimate_iqr(data, epsilon, beta, generator, ledger=ledger).iqr)


@register_estimator(
    "quantile",
    reservation=1.0,
    min_records=8,
    scalar=False,
    needs=("sorted", "sorted_abs"),
    params=(
        ParamField(
            "levels",
            type="levels",
            required=True,
            example=(0.5,),
            description="Quantile levels strictly between 0 and 1",
        ),
    ),
    description="Universal pure-DP quantiles at the requested levels",
)
def _run_quantile(data, generator, ledger, *, epsilon, beta, levels):
    result = estimate_quantiles(
        data, list(levels), epsilon, beta, generator, ledger=ledger
    )
    return tuple(float(value) for value in result.values)


@register_estimator(
    "multivariate_mean",
    reservation=1.0,
    min_records=8,
    scalar=False,
    dimension="multivariate",
    description="Universal pure-DP multivariate mean (per-coordinate split)",
)
def _run_multivariate_mean(data, generator, ledger, *, epsilon, beta):
    result = estimate_mean_multivariate(data, epsilon, beta, generator, ledger=ledger)
    return tuple(float(value) for value in result.mean)
