"""Batched, deterministic trial execution.

:func:`run_batch` maps a trial function over ``trials`` independent trials,
optionally fanning the work out over a process pool.  Three properties make it
usable as the substrate for every repeated-experiment loop in the repo:

Determinism contract
    Every trial receives its own child generator, seeded from
    :func:`repro._rng.spawn_seeds` *before* any work starts.  Trial ``i``
    therefore sees exactly the same random stream no matter how many workers
    run, how the trials are chunked, or whether earlier trials failed — so
    ``workers=1`` and ``workers=N`` produce bit-for-bit identical results for
    the same base seed, and a failure in trial ``k-1`` cannot shift the
    randomness of trial ``k``.

Serial fallback
    ``workers=1`` (the default) executes in-process with zero multiprocessing
    overhead.  The same per-trial seeding is used, so it is also the reference
    implementation the parallel path is checked against.

Structured failure capture
    With ``allow_failures=True``, exceptions of the types in
    ``failure_types`` (by default :class:`~repro.exceptions.MechanismError`,
    e.g. a failed propose-test-release check) are recorded as
    :class:`TrialFailure` entries carrying the trial index, exception type and
    message, instead of being collapsed into a bare counter.  Any other
    exception — or any failure when ``allow_failures=False`` — propagates.

The parallel path uses the ``fork`` start method so that closures (the common
shape of estimator lambdas in the benchmarks) reach the workers without
pickling; only integer seeds and results cross the process boundary.  On
platforms without ``fork``, or inside a daemonic pool worker, execution falls
back to the serial path — results are identical either way.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple, Type

import numpy as np

from repro._rng import RngLike, spawn_seeds
from repro.exceptions import DomainError, MechanismError

__all__ = ["TrialFn", "TrialFailure", "BatchResult", "run_batch"]

#: A trial body: ``(trial_index, per-trial generator) -> result``.
TrialFn = Callable[[int, np.random.Generator], Any]


@dataclass(frozen=True)
class TrialFailure:
    """Structured record of one failed trial.

    Attributes
    ----------
    index:
        0-based index of the trial that failed.
    error:
        Exception class name (e.g. ``"MechanismError"``).
    message:
        The stringified exception.
    """

    index: int
    error: str
    message: str


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :func:`run_batch` call.

    Attributes
    ----------
    results:
        Return values of the successful trials, ordered by trial index.
    indices:
        Trial index of each entry in ``results``.
    failures:
        One :class:`TrialFailure` per failed trial, ordered by trial index.
    trials:
        Total number of trials requested.
    workers:
        Number of workers actually used (1 when the serial path ran).
    """

    results: Tuple[Any, ...]
    indices: Tuple[int, ...]
    failures: Tuple[TrialFailure, ...]
    trials: int
    workers: int

    @property
    def n_failures(self) -> int:
        """Number of failed trials."""
        return len(self.failures)

    def estimates(self) -> np.ndarray:
        """The successful results coerced to a float array (for scalar trials)."""
        return np.asarray([float(value) for value in self.results], dtype=float)


def _execute_span(
    fn: TrialFn,
    catch: Tuple[Type[BaseException], ...],
    start: int,
    seeds: np.ndarray,
) -> Tuple[list, list, list]:
    """Run trials ``start .. start + len(seeds)`` serially on their own generators."""
    results: list = []
    indices: list = []
    failures: list = []
    for offset, seed in enumerate(seeds.tolist()):
        index = start + offset
        generator = np.random.default_rng(int(seed))
        if catch:
            try:
                value = fn(index, generator)
            except catch as exc:
                failures.append(
                    TrialFailure(index=index, error=type(exc).__name__, message=str(exc))
                )
                continue
        else:
            value = fn(index, generator)
        results.append(value)
        indices.append(index)
    return results, indices, failures


# Worker state inherited through fork: set in the parent immediately before the
# pool is created so that unpicklable trial functions (closures over datasets,
# estimator lambdas) reach the children without crossing a pipe.  The lock
# serialises the set-globals/fork/reset window so concurrent run_batch calls
# from different threads cannot fork each other's trial function.
_WORKER_FN: Optional[TrialFn] = None
_WORKER_CATCH: Tuple[Type[BaseException], ...] = ()
_WORKER_STATE_LOCK = threading.Lock()


def _pool_entry(span: Tuple[int, np.ndarray]) -> Tuple[list, list, list]:
    start, seeds = span
    assert _WORKER_FN is not None, "worker state not initialised before fork"
    return _execute_span(_WORKER_FN, _WORKER_CATCH, start, seeds)


def _parallel_available() -> bool:
    if "fork" not in mp.get_all_start_methods():
        return False
    # Daemonic pool workers may not create child processes; nested run_batch
    # calls degrade to the (identical) serial path instead of crashing.
    return not mp.current_process().daemon


def run_batch(
    trial_fn: TrialFn,
    trials: int,
    rng: RngLike = None,
    *,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    allow_failures: bool = False,
    failure_types: Sequence[Type[BaseException]] = (MechanismError,),
) -> BatchResult:
    """Run ``trials`` independent trials of ``trial_fn``, possibly in parallel.

    Parameters
    ----------
    trial_fn:
        Callable mapping ``(trial_index, generator)`` to an arbitrary
        (picklable, when ``workers > 1``) result.  For parallel execution the
        function should be pure: mutations of closed-over state stay in the
        worker process that made them.
    trials:
        Number of trials (may be 0, yielding an empty result).
    rng:
        Base seed material; per-trial generators are derived from it via
        :func:`repro._rng.spawn_seeds`.
    workers:
        Process count; ``1`` runs serially in-process, ``None`` uses
        ``os.cpu_count()``.  Results are bit-for-bit independent of this value.
    chunk_size:
        Trials dispatched per pool task; defaults to roughly four chunks per
        worker.  Affects scheduling only, never results.
    allow_failures:
        When ``True``, exceptions of the types in ``failure_types`` are
        captured as structured :class:`TrialFailure` records; otherwise the
        first one propagates.
    """
    if trials < 0:
        raise DomainError(f"trials must be non-negative, got {trials}")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise DomainError(f"workers must be at least 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise DomainError(f"chunk_size must be at least 1, got {chunk_size}")

    seeds = spawn_seeds(rng, trials)
    catch = tuple(failure_types) if allow_failures else ()
    effective_workers = min(workers, trials) if trials else 1

    if effective_workers <= 1 or not _parallel_available():
        results, indices, failures = _execute_span(trial_fn, catch, 0, seeds)
        used = 1
    else:
        if chunk_size is None:
            chunk_size = max(1, math.ceil(trials / (effective_workers * 4)))
        spans = [
            (start, seeds[start : start + chunk_size])
            for start in range(0, trials, chunk_size)
        ]
        global _WORKER_FN, _WORKER_CATCH
        # The state must stay set for the pool's whole lifetime (a worker that
        # dies abnormally is replaced by a fresh fork, which must inherit it),
        # so concurrent run_batch calls from other threads serialise here.
        with _WORKER_STATE_LOCK:
            _WORKER_FN, _WORKER_CATCH = trial_fn, catch
            try:
                context = mp.get_context("fork")
                with context.Pool(processes=effective_workers) as pool:
                    chunk_outputs = pool.map(_pool_entry, spans)
            finally:
                _WORKER_FN, _WORKER_CATCH = None, ()
        results, indices, failures = [], [], []
        for span_results, span_indices, span_failures in chunk_outputs:
            results.extend(span_results)
            indices.extend(span_indices)
            failures.extend(span_failures)
        used = effective_workers

    return BatchResult(
        results=tuple(results),
        indices=tuple(indices),
        failures=tuple(failures),
        trials=trials,
        workers=used,
    )
