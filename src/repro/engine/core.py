"""Batched, deterministic trial execution.

:func:`run_batch` maps a trial function over ``trials`` independent trials,
optionally fanning the work out over a process pool.  Three properties make it
usable as the substrate for every repeated-experiment loop in the repo:

Determinism contract
    Every trial receives its own child generator, seeded from
    :func:`repro._rng.spawn_seeds` *before* any work starts.  Trial ``i``
    therefore sees exactly the same random stream no matter how many workers
    run, how the trials are chunked, or whether earlier trials failed — so
    ``workers=1`` and ``workers=N`` produce bit-for-bit identical results for
    the same base seed, and a failure in trial ``k-1`` cannot shift the
    randomness of trial ``k``.  The same contract extends to the grid layer
    (:func:`repro.engine.run_grid`): each cell's seeds are derived up-front
    from that cell's own base seed, in cell-submission order, so a cell's
    results are additionally invariant to scheduling and to failures in
    *other* cells.

Serial fallback
    ``workers=1`` (the default) executes in-process with zero multiprocessing
    overhead.  The same per-trial seeding is used, so it is also the reference
    implementation the parallel path is checked against.  Nested engine use
    (a trial function that itself calls ``run_batch``/``run_grid``) detects
    that it is running inside a daemonic pool worker and degrades to this
    identical serial path.

Structured failure capture
    With ``allow_failures=True``, exceptions of the types in
    ``failure_types`` (by default :class:`~repro.exceptions.MechanismError`,
    e.g. a failed propose-test-release check) are recorded as
    :class:`TrialFailure` entries carrying the trial index, exception type and
    message, instead of being collapsed into a bare counter.  Any other
    exception — or any failure when ``allow_failures=False`` — propagates.

Execution layers
    Parallel execution is provided by :class:`repro.engine.EnginePool`, which
    forks its workers once and serves any number of batch/grid calls (pass an
    open pool via ``pool=``; benchmark sweeps share one pool across all their
    cells).  Without an explicit pool, ``workers > 1`` spins up an ephemeral
    pool for the one call.  Trial functions reach the workers through the
    :mod:`repro.engine._closures` codec (plain pickle when possible, a
    marshal-based closure codec otherwise); a function that cannot be shipped
    at all runs in-process, with identical results.  Large datasets should be
    handed off through :class:`repro.engine.SharedArray` (see
    :func:`repro.bench.dataset_batch` with ``shared=True``): the workers then
    map one shared segment instead of each receiving a pickled copy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple, Type

import numpy as np

from repro._rng import RngLike, spawn_seeds
from repro.exceptions import DomainError, EngineError, MechanismError

__all__ = ["TrialFn", "TrialFailure", "BatchResult", "run_batch", "execute_span"]

#: A trial body: ``(trial_index, per-trial generator) -> result``.
TrialFn = Callable[[int, np.random.Generator], Any]


@dataclass(frozen=True)
class TrialFailure:
    """Structured record of one failed trial.

    Attributes
    ----------
    index:
        0-based index of the trial that failed.
    error:
        Exception class name (e.g. ``"MechanismError"``).
    message:
        The stringified exception.
    """

    index: int
    error: str
    message: str


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one :func:`run_batch` call.

    Attributes
    ----------
    results:
        Return values of the successful trials, ordered by trial index.
    indices:
        Trial index of each entry in ``results``.
    failures:
        One :class:`TrialFailure` per failed trial, ordered by trial index.
    trials:
        Total number of trials requested.
    workers:
        Number of workers actually used (1 when the serial path ran).
    """

    results: Tuple[Any, ...]
    indices: Tuple[int, ...]
    failures: Tuple[TrialFailure, ...]
    trials: int
    workers: int

    @property
    def n_failures(self) -> int:
        """Number of failed trials."""
        return len(self.failures)

    def estimates(self) -> np.ndarray:
        """The successful results as a float array.

        Scalar trial results yield a 1-D array (one entry per successful
        trial, ordered by trial index).  Array-like results — e.g. the
        coordinate-wise multivariate estimators — are stacked into a 2-D
        ``(n_success, d)`` array (or higher-dimensional, mirroring the trial
        result shape).
        """
        if not self.results:
            return np.empty(0, dtype=float)
        first = np.asarray(self.results[0], dtype=float)
        if first.ndim == 0:
            return np.asarray([float(value) for value in self.results], dtype=float)
        return np.stack(
            [np.asarray(value, dtype=float) for value in self.results], axis=0
        )


def execute_span(
    fn: TrialFn,
    catch: Tuple[Type[BaseException], ...],
    start: int,
    seeds: np.ndarray,
) -> Tuple[list, list, list]:
    """Run trials ``start .. start + len(seeds)`` serially on their own generators.

    This is the engine's reference implementation: every execution path —
    serial, ephemeral pool, persistent pool — bottoms out here, which is what
    makes the determinism contract a structural property rather than a test
    assertion.
    """
    results: list = []
    indices: list = []
    failures: list = []
    for offset, seed in enumerate(seeds.tolist()):
        index = start + offset
        generator = np.random.default_rng(int(seed))
        if catch:
            try:
                value = fn(index, generator)
            except catch as exc:
                failures.append(
                    TrialFailure(index=index, error=type(exc).__name__, message=str(exc))
                )
                continue
        else:
            value = fn(index, generator)
        results.append(value)
        indices.append(index)
    return results, indices, failures


def merge_span_outputs(outputs) -> Tuple[list, list, list]:
    """Concatenate ``(results, indices, failures)`` span triples in order.

    The single merge point shared by the batch and grid paths, so the span
    output format has exactly one producer (:func:`execute_span`) and one
    consumer shape.
    """
    results: list = []
    indices: list = []
    failures: list = []
    for span_results, span_indices, span_failures in outputs:
        results.extend(span_results)
        indices.extend(span_indices)
        failures.extend(span_failures)
    return results, indices, failures


def _run_spans_on_pool(
    pool,
    trial_fn: TrialFn,
    catch: Tuple[Type[BaseException], ...],
    seeds: np.ndarray,
    trials: int,
    chunk_size: Optional[int],
) -> Tuple[list, list, list]:
    """Fan one batch out over ``pool``; raises the earliest trial error."""
    from repro.engine.pool import Span, default_chunk_size

    effective = min(pool.workers, trials)
    if chunk_size is None:
        chunk_size = default_chunk_size(trials, effective)
    spans = [
        Span(job=0, start=start, seeds=seeds[start : start + chunk_size])
        for start in range(0, trials, chunk_size)
    ]
    outputs, errors = pool.execute_spans([trial_fn], [catch], spans, fail_fast=True)
    if errors:
        # Each span stops at its first failing trial, so the erroring span
        # with the smallest start index carries the earliest completed trial
        # error — the exception the serial path would have raised (modulo
        # spans cancelled by fail-fast, whose results were discarded anyway).
        first = min(errors, key=lambda span_id: spans[span_id].start)
        raise errors[first]
    return merge_span_outputs(outputs)


def run_batch(
    trial_fn: TrialFn,
    trials: int,
    rng: RngLike = None,
    *,
    workers: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    allow_failures: bool = False,
    failure_types: Sequence[Type[BaseException]] = (MechanismError,),
    pool=None,
) -> BatchResult:
    """Run ``trials`` independent trials of ``trial_fn``, possibly in parallel.

    Parameters
    ----------
    trial_fn:
        Callable mapping ``(trial_index, generator)`` to an arbitrary
        (picklable, when executing on a pool) result.  For parallel execution
        the function should be pure: mutations of closed-over state stay in
        the worker process that made them.
    trials:
        Number of trials (may be 0, yielding an empty result).
    rng:
        Base seed material; per-trial generators are derived from it via
        :func:`repro._rng.spawn_seeds`.
    workers:
        Process count; ``1`` runs serially in-process, ``None`` uses
        ``os.cpu_count()``.  Results are bit-for-bit independent of this
        value.  Ignored when ``pool`` is given (the pool's size applies).
    chunk_size:
        Trials dispatched per pool task; defaults to roughly four chunks per
        worker.  Affects scheduling only, never results.
    allow_failures:
        When ``True``, exceptions of the types in ``failure_types`` are
        captured as structured :class:`TrialFailure` records; otherwise the
        first one propagates.
    pool:
        An open :class:`~repro.engine.EnginePool` to execute on.  Passing a
        pool lets many calls share one set of forked workers (no per-call
        startup); without it, ``workers > 1`` forks an ephemeral pool for
        this call only.
    """
    from repro.engine.pool import EnginePool

    if trials < 0:
        raise DomainError(f"trials must be non-negative, got {trials}")
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise DomainError(f"workers must be at least 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise DomainError(f"chunk_size must be at least 1, got {chunk_size}")

    seeds = spawn_seeds(rng, trials)
    catch = tuple(failure_types) if allow_failures else ()

    if pool is not None:
        if pool.closed:
            raise EngineError("cannot run_batch on a closed EnginePool")
        usable = pool.parallel and min(pool.workers, trials) > 1
        if usable:
            results, indices, failures = _run_spans_on_pool(
                pool, trial_fn, catch, seeds, trials, chunk_size
            )
            used = min(pool.workers, trials)
        else:
            results, indices, failures = execute_span(trial_fn, catch, 0, seeds)
            used = 1
    else:
        effective = min(workers, trials) if trials else 1
        ephemeral = EnginePool(effective) if effective > 1 else None
        if ephemeral is not None and ephemeral.parallel:
            with ephemeral:
                results, indices, failures = _run_spans_on_pool(
                    ephemeral, trial_fn, catch, seeds, trials, chunk_size
                )
            used = effective
        else:
            results, indices, failures = execute_span(trial_fn, catch, 0, seeds)
            used = 1

    return BatchResult(
        results=tuple(results),
        indices=tuple(indices),
        failures=tuple(failures),
        trials=trials,
        workers=used,
    )
