"""Callable transfer for the persistent worker pool.

A persistent :class:`~repro.engine.pool.EnginePool` forks its workers *once*
and then serves many :func:`~repro.engine.run_batch` / ``run_grid`` calls, so
the trial functions of later calls cannot reach the workers through fork
inheritance — they have to cross the pipe.  Standard :mod:`pickle` refuses the
most common shapes in this repo (lambdas and local closures over datasets and
estimator objects), so this module implements a small self-contained codec:

* callables that :mod:`pickle` accepts (module-level functions, bound methods
  of picklable objects, ...) are shipped as plain pickles;
* pure-Python functions that pickle rejects are decomposed into their code
  object (serialised with :mod:`marshal`), defaults, keyword-only defaults and
  closure cell contents, plus the name of the module supplying their globals.
  Function-valued defaults/cells are encoded recursively;
* :class:`functools.partial` objects are encoded as (inner callable, args,
  kwargs).

Decoding resolves the globals module through :data:`sys.modules` (fork
children inherit the parent's imported modules) with an
:func:`importlib.import_module` fallback for modules imported after the pool
forked.  Anything the codec cannot express raises
:class:`CallableTransferError`; callers degrade to in-process execution, which
by the engine's determinism contract produces identical results.

The codec is an internal transport between a parent and worker processes it
forked itself — it is not a general serialisation format and performs no
validation of the encoded payload.
"""

from __future__ import annotations

import functools
import importlib
import marshal
import pickle
import sys
import types
from typing import Any, Tuple

__all__ = ["CallableTransferError", "encode_callable", "decode_callable"]

#: Payload tags.
_PICKLE = "pickle"
_FUNCTION = "function"
_PARTIAL = "partial"
_CELL_PICKLE = "cell-pickle"
_CELL_CALLABLE = "cell-callable"

#: Recursion guard: function-valued cells referencing each other should never
#: be deeper than a couple of levels in practice.
_MAX_DEPTH = 8


class CallableTransferError(TypeError):
    """The callable cannot be shipped to pool workers.

    Raised when neither pickle nor the function decomposition below can
    express the callable (e.g. a closure over an open file handle).  The
    engine reacts by running the affected spans in the parent process.
    """


def _encode_value(value: Any, depth: int) -> Tuple[str, Any]:
    """Encode one default/cell value: plain pickle, or a nested callable."""
    try:
        return _CELL_PICKLE, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        if callable(value):
            return _CELL_CALLABLE, _encode(value, depth + 1)
        raise CallableTransferError(
            f"closure state of type {type(value).__name__} is neither picklable "
            f"nor a callable"
        )


def _decode_value(tag: str, payload: Any) -> Any:
    if tag == _CELL_PICKLE:
        return pickle.loads(payload)
    if tag == _CELL_CALLABLE:
        return _decode(payload)
    raise CallableTransferError(f"unknown cell tag {tag!r}")


def _referenced_globals(code: types.CodeType) -> set:
    """Global names a code object (and its nested code objects) may look up."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _referenced_globals(const)
    return names


def _encode_function(fn: types.FunctionType, depth: int) -> Tuple[str, Any]:
    """Decompose a pure-Python function that plain pickle rejected."""
    try:
        code_bytes = marshal.dumps(fn.__code__)
    except ValueError as exc:  # pragma: no cover - e.g. code referencing ctypes
        raise CallableTransferError(f"cannot marshal code of {fn!r}: {exc}") from exc
    defaults = None
    if fn.__defaults__ is not None:
        defaults = tuple(_encode_value(value, depth) for value in fn.__defaults__)
    kwdefaults = None
    if fn.__kwdefaults__:
        kwdefaults = {
            key: _encode_value(value, depth) for key, value in fn.__kwdefaults__.items()
        }
    closure = None
    if fn.__closure__ is not None:
        try:
            cell_values = [cell.cell_contents for cell in fn.__closure__]
        except ValueError as exc:  # empty cell: free variable not yet bound
            raise CallableTransferError(
                f"cannot transfer {fn.__name__}: closure cell is empty ({exc})"
            ) from exc
        closure = tuple(_encode_value(value, depth) for value in cell_values)
    module = fn.__globals__.get("__name__") or getattr(fn, "__module__", None) or "__main__"
    # Ship the *values* of the module globals the function references.  The
    # worker's copy of the module may be a pre-fork snapshot (``__main__``
    # scripts especially): bindings created or rebound after the pool forked
    # would otherwise resolve stale — or not at all.  Best effort: names whose
    # values cannot be encoded fall back to the worker's module dict.
    overlay = {}
    for global_name in sorted(_referenced_globals(fn.__code__)):
        if global_name not in fn.__globals__:
            continue
        value = fn.__globals__[global_name]
        if isinstance(value, types.ModuleType):
            continue  # modules resolve worker-side (unpicklable, stable anyway)
        try:
            overlay[global_name] = _encode_value(value, depth + 1)
        except CallableTransferError:
            continue
    return _FUNCTION, (
        code_bytes,
        module,
        fn.__name__,
        defaults,
        kwdefaults,
        closure,
        overlay or None,
    )


def _decode_function(payload: Any) -> types.FunctionType:
    code_bytes, module_name, name, defaults, kwdefaults, closure, overlay = payload
    code = marshal.loads(code_bytes)
    module = sys.modules.get(module_name)
    if module is None:
        try:
            module = importlib.import_module(module_name)
        except Exception as exc:
            raise CallableTransferError(
                f"cannot resolve globals module {module_name!r} in worker: {exc}"
            ) from exc
    if overlay:
        globalns = dict(module.__dict__)
        globalns.update(
            {key: _decode_value(tag, value) for key, (tag, value) in overlay.items()}
        )
    else:
        globalns = module.__dict__
    decoded_defaults = None
    if defaults is not None:
        decoded_defaults = tuple(_decode_value(tag, value) for tag, value in defaults)
    cells = None
    if closure is not None:
        cells = tuple(
            types.CellType(_decode_value(tag, value)) for tag, value in closure
        )
    fn = types.FunctionType(code, globalns, name, decoded_defaults, cells)
    if kwdefaults is not None:
        fn.__kwdefaults__ = {
            key: _decode_value(tag, value) for key, (tag, value) in kwdefaults.items()
        }
    return fn


def _encode(fn: Any, depth: int) -> Tuple[str, Any]:
    if depth > _MAX_DEPTH:
        raise CallableTransferError("callable graph too deeply nested to transfer")
    try:
        payload = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        pass
    else:
        return _PICKLE, payload
    if isinstance(fn, functools.partial):
        inner = _encode(fn.func, depth + 1)
        try:
            args = pickle.dumps(fn.args, protocol=pickle.HIGHEST_PROTOCOL)
            kwargs = pickle.dumps(fn.keywords, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CallableTransferError(
                f"partial arguments are not picklable: {exc}"
            ) from exc
        return _PARTIAL, (inner, args, kwargs)
    if isinstance(fn, types.FunctionType):
        return _encode_function(fn, depth)
    if isinstance(fn, types.MethodType):
        # Unpicklable bound method: ship the underlying function; the instance
        # travels as a closure-like pickled value.
        try:
            instance = pickle.dumps((fn.__self__,), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CallableTransferError(
                f"bound method receiver is not picklable: {exc}"
            ) from exc
        return _PARTIAL, (_encode(fn.__func__, depth + 1), instance, pickle.dumps({}))
    raise CallableTransferError(
        f"cannot transfer callable of type {type(fn).__name__} to pool workers"
    )


def _decode(encoded: Tuple[str, Any]) -> Any:
    tag, payload = encoded
    if tag == _PICKLE:
        return pickle.loads(payload)
    if tag == _FUNCTION:
        return _decode_function(payload)
    if tag == _PARTIAL:
        inner, args, kwargs = payload
        return functools.partial(_decode(inner), *pickle.loads(args), **pickle.loads(kwargs))
    raise CallableTransferError(f"unknown payload tag {tag!r}")


def encode_callable(fn: Any) -> Tuple[str, Any]:
    """Encode ``fn`` for transfer to a pool worker.

    Returns an opaque payload for :func:`decode_callable`.  Raises
    :class:`CallableTransferError` when the callable cannot be expressed; the
    caller is expected to fall back to in-process execution.
    """
    if not callable(fn):
        raise CallableTransferError(f"not a callable: {fn!r}")
    return _encode(fn, 0)


def decode_callable(encoded: Tuple[str, Any]) -> Any:
    """Reconstruct a callable encoded by :func:`encode_callable`."""
    return _decode(encoded)
