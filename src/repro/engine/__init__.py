"""repro.engine — deterministic batched trial execution.

The engine turns "repeat this randomized experiment N times" into a single
:func:`run_batch` call with a hard determinism contract: per-trial generators
are derived up-front from the base seed (:func:`repro._rng.spawn_seeds`), so
results are bit-for-bit identical whether the batch runs serially
(``workers=1``), across a process pool (``workers=N``), or with some trials
failing.  Failed trials are captured as structured :class:`TrialFailure`
records rather than a bare counter.

Every repeated-trial loop in the repo routes through here: the statistical
trial runners (:mod:`repro.analysis.trials`), the sample-complexity search,
the capability matrix, the CLI's ``--trials`` mode, and the E1–E16 benchmark
drivers.
"""

from repro.engine.core import BatchResult, TrialFailure, TrialFn, run_batch

__all__ = ["BatchResult", "TrialFailure", "TrialFn", "run_batch"]
