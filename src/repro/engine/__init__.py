"""repro.engine — deterministic batched trial execution.

The engine turns "repeat this randomized experiment N times" into a single
:func:`run_batch` call — and "sweep this whole parameter grid" into a single
:func:`run_grid` call — with a hard determinism contract: per-trial
generators are derived up-front from the base seed
(:func:`repro._rng.spawn_seeds`), so results are bit-for-bit identical
whether the work runs serially (``workers=1``), across a process pool
(``workers=N``), on a shared persistent :class:`EnginePool`, or with some
trials (or whole cells) failing.  Failed trials are captured as structured
:class:`TrialFailure` records, failed grid cells as :class:`CellFailure`
records.

Layered API:

* :func:`run_batch` — one batch of trials (the PR-1 substrate, unchanged
  contract, now lock-free);
* :func:`run_grid` + :class:`GridCell` — many batches ("cells") fanned out
  over one pool, the unit of the E-driver benchmark sweeps;
* :class:`EnginePool` — a context-managed pool that forks once and serves
  any number of batch/grid calls, eliminating per-call startup;
* :class:`SharedArray` / :func:`as_shared` — shared-memory dataset hand-off
  so large arrays are mapped, not copied, into workers.

Every repeated-trial loop in the repo routes through here: the statistical
trial runners (:mod:`repro.analysis.trials`), the sample-complexity search,
the capability matrix, the CLI's ``--trials``/``suite`` modes, and the
E1–E16 benchmark drivers.
"""

from repro.engine.core import BatchResult, TrialFailure, TrialFn, execute_span, run_batch
from repro.engine.grid import CellFailure, GridCell, GridResult, run_grid
from repro.engine.pool import EnginePool
from repro.engine.shm import (
    SharedArray,
    as_shared,
    share_view,
    unlink_all,
    view_segments,
)

__all__ = [
    "BatchResult",
    "TrialFailure",
    "TrialFn",
    "run_batch",
    "execute_span",
    "GridCell",
    "GridResult",
    "CellFailure",
    "run_grid",
    "EnginePool",
    "SharedArray",
    "as_shared",
    "share_view",
    "unlink_all",
    "view_segments",
]
