"""Shared-memory dataset hand-off for the engine.

Large datasets closed over by trial functions would otherwise be pickled into
every worker on every call (the closure codec ships cell contents by value).
:class:`SharedArray` places the data in a :mod:`multiprocessing.shared_memory`
segment exactly once; what crosses the pipe afterwards is only the segment
name plus shape/dtype metadata, and every worker maps the same physical
pages.

Protocol
--------
* The *owner* process (the one that called :func:`as_shared` /
  :meth:`SharedArray.from_array`) is responsible for the segment's lifetime:
  call :meth:`SharedArray.unlink` (or use the object as a context manager)
  when the datasets are no longer needed.  Workers only ever *attach*.
* Worker-side attachments are cached per segment for the life of the process
  and explicitly unregistered from the ``resource_tracker`` — on Pythons
  before 3.13 the tracker erroneously adopts attached segments and would
  unlink them from under the owner when the worker exits.
* The wrapped array is exposed read-only in workers by convention: trial
  functions must treat datasets as immutable (mutations would be visible to
  concurrent trials in other workers, breaking trial independence).

``SharedArray`` implements ``__array__``, ``__len__`` and ``__getitem__`` so
it can be handed directly to the estimators (which call ``np.asarray`` on
their input) without copying.

Sketch hand-off
---------------
:func:`share_view` re-homes a :class:`~repro.dataview.DatasetView` — the raw
data *and* every materialised sketch — into shared segments.  A view pickles
its sketches along with its base, so once shared, fanning a sketch-backed
dataset out across an :class:`~repro.engine.EnginePool` ships only segment
names: workers attach to the registration-time sketches instead of
re-sorting the data per process.  :func:`view_segments` enumerates the
segments a view holds so the owner can :func:`unlink_all` of them.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterable, Tuple

import numpy as np

__all__ = ["SharedArray", "as_shared", "share_view", "unlink_all", "view_segments"]

#: Process-local cache of attached segments, so repeated unpickling of the
#: same dataset in one worker maps the segment once and keeps it alive.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        if multiprocessing.parent_process() is None:
            # Pre-3.13 resource_tracker wrongly tracks attached (not created)
            # segments and would unlink them when *this* process exits,
            # destroying the owner's data.  Hand tracking back to the owner.
            # Skip this inside multiprocessing children (the engine's pool
            # workers): they inherit the owner's tracker, so unregistering
            # there would cancel the owner's own registration instead.
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker version variations
                pass
        _ATTACHED[name] = segment
    return segment


def _rebuild(name: str, shape: Tuple[int, ...], dtype_str: str) -> "SharedArray":
    """Unpickle hook: attach to an existing segment by name."""
    segment = _attach_segment(name)
    return SharedArray(segment, shape, np.dtype(dtype_str), owner=False)


class SharedArray:
    """A numpy array whose buffer lives in named shared memory.

    Create with :func:`as_shared` (copies an existing array in) and pass it
    around like an ndarray; pickling transfers only ``(name, shape, dtype)``.
    """

    __slots__ = ("_segment", "_shape", "_dtype", "_owner", "_view")

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        owner: bool,
    ):
        self._segment = segment
        self._shape = tuple(int(dim) for dim in shape)
        self._dtype = np.dtype(dtype)
        self._owner = owner
        self._view = np.ndarray(self._shape, dtype=self._dtype, buffer=segment.buf)
        if not owner:
            # Attached views are read-only by convention (see module docstring).
            self._view.flags.writeable = False

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedArray":
        """Copy ``array`` into a fresh shared-memory segment owned by this process."""
        source = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=max(1, source.nbytes))
        shared = cls(segment, source.shape, source.dtype, owner=True)
        shared._view[...] = source
        return shared

    # -- ndarray interoperability ------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The live (zero-copy) ndarray view of the segment."""
        return self._view

    def __array__(self, dtype=None, copy=None):
        if dtype is not None and np.dtype(dtype) != self._dtype:
            return self._view.astype(dtype)
        if copy:
            return self._view.copy()
        return self._view

    def __len__(self) -> int:
        return self._shape[0] if self._shape else 0

    def __getitem__(self, item):
        return self._view[item]

    @property
    def shape(self) -> Tuple[int, ...]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def size(self) -> int:
        return int(self._view.size)

    @property
    def name(self) -> str:
        """The shared-memory segment name (the cross-process handle)."""
        return self._segment.name

    @property
    def owner(self) -> bool:
        """Whether this process created (and must eventually unlink) the segment."""
        return self._owner

    # -- pickling ----------------------------------------------------------
    def __reduce__(self):
        return _rebuild, (self._segment.name, self._shape, self._dtype.str)

    # -- lifetime ----------------------------------------------------------
    def unlink(self) -> None:
        """Release the segment (owner only; attached copies just close)."""
        self._view = np.ndarray(0, dtype=self._dtype)  # drop the buffer view
        name = self._segment.name
        try:
            self._segment.close()
        except Exception:  # pragma: no cover - already closed
            pass
        if self._owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
        _ATTACHED.pop(name, None)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"SharedArray(name={self._segment.name!r}, shape={self._shape}, "
            f"dtype={self._dtype}, {role})"
        )


def as_shared(array: np.ndarray) -> SharedArray:
    """Copy ``array`` into shared memory (no-op passthrough for SharedArray)."""
    if isinstance(array, SharedArray):
        return array
    return SharedArray.from_array(np.asarray(array))


def unlink_all(arrays: Iterable[SharedArray]) -> None:
    """Unlink every :class:`SharedArray` in ``arrays`` (ignores plain ndarrays)."""
    for array in arrays:
        if isinstance(array, SharedArray):
            array.unlink()


def share_view(view: "DatasetView") -> "DatasetView":
    """Re-home a :class:`~repro.dataview.DatasetView` in shared memory.

    The base array and every *materialised* sketch are copied into their own
    segments (parts already shared pass through untouched); sketches are
    never recomputed.  The returned view pickles by segment names only, so
    engine-pool workers map the registration-time sketches instead of
    re-deriving them.  The caller owns the segments — release them with
    :func:`view_segments` + :func:`unlink_all`.
    """
    from repro.dataview import DatasetView

    return DatasetView(
        as_shared(view.base),
        {name: as_shared(sketch) for name, sketch in view.sketches().items()},
    )


def view_segments(view: "DatasetView") -> list:
    """Every storage object a view holds (base first, then sketches).

    Feed to :func:`unlink_all`, which skips any part that is not actually a
    :class:`SharedArray`.
    """
    return [view.base, *view.sketches().values()]
