"""Persistent worker pool: fork once, serve many batch/grid calls.

:class:`EnginePool` owns a set of forked worker processes and a duplex pipe to
each.  Unlike the original per-call ``multiprocessing.Pool`` (which handed the
trial function to workers through module-level globals guarded by a lock),
the pool carries *no module-level state*: each call ships its trial functions
to the workers explicitly through the pipes via the
:mod:`repro.engine._closures` codec, so independent pools — including pools
driven from different threads — never serialise on each other.

Execution model
---------------
* Workers are forked lazily on the first parallel call and reused for every
  subsequent :func:`~repro.engine.run_batch` / :func:`~repro.engine.run_grid`
  served by the pool, eliminating per-call fork/teardown.
* Work is dispatched at *span* granularity (a contiguous range of trials of
  one cell, carrying its pre-derived seeds).  Scheduling is dynamic — a span
  goes to whichever worker frees up first — but results are keyed by span, so
  scheduling can never affect them.
* A trial function the codec cannot ship (or that a worker fails to decode)
  falls back to in-process execution of its spans; by the determinism
  contract the results are identical either way.
* Exceptions raised inside a worker are sent back and re-raised in the
  parent; the worker itself survives, so one failing cell does not poison the
  pool for later calls.  Only a worker *dying* (segfault, kill) raises
  :class:`~repro.exceptions.EngineError` and closes the pool.
* On platforms without ``fork``, or inside a daemonic worker (nested engine
  use), :attr:`EnginePool.parallel` is false and callers degrade to the
  identical serial path.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing as mp
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine._closures import CallableTransferError, decode_callable, encode_callable
from repro.exceptions import DomainError, EngineError

__all__ = ["EnginePool", "Span"]


@dataclass(frozen=True)
class Span:
    """A contiguous range of trials of one job (cell), with its seeds.

    ``job`` indexes into the ``fns``/``catches`` sequences handed to
    :meth:`EnginePool.execute_spans`; ``start`` is the absolute index of the
    first trial in the span; ``seeds[k]`` seeds trial ``start + k``.
    """

    job: int
    start: int
    seeds: np.ndarray


#: Worker-side sentinel: the payload for this function token failed to decode.
_DECODE_FAILED = object()


def _transferable(exc: BaseException) -> BaseException:
    """Return ``exc`` if it can cross the pipe, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return EngineError(f"worker raised unpicklable {type(exc).__name__}: {exc}")


def _worker_main(conn: Connection) -> None:
    """Worker loop: cache decoded trial functions, execute spans on demand."""
    from repro.engine.core import execute_span

    fns: Dict[int, Any] = {}
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        tag = message[0]
        if tag == "exit":
            break
        if tag == "fn":
            _, token, payload = message
            try:
                fns[token] = decode_callable(payload)
            except Exception:
                fns[token] = _DECODE_FAILED
            continue
        if tag == "drop":
            # End of one batch/grid call: evict its functions (and their
            # captured closure state) so a long-lived pool does not
            # accumulate every trial function it ever served.
            for token in message[1]:
                fns.pop(token, None)
            continue
        # ("span", span_id, fn_token, catch, start, seeds)
        _, span_id, fn_token, catch, start, seeds = message
        fn = fns.get(fn_token, _DECODE_FAILED)
        if fn is _DECODE_FAILED:
            conn.send(("fnerr", span_id))
            continue
        try:
            output = execute_span(fn, catch, start, seeds)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
            conn.send(("err", span_id, _transferable(exc)))
            continue
        try:
            conn.send(("ok", span_id, output))
        except Exception as exc:  # unpicklable trial results
            conn.send(
                ("err", span_id, EngineError(f"trial results are not picklable: {exc}"))
            )
    conn.close()


@dataclass
class _WorkerHandle:
    process: mp.process.BaseProcess
    conn: Connection
    sent_tokens: set


class EnginePool:
    """A reusable fork pool serving many ``run_batch``/``run_grid`` calls.

    Use as a context manager::

        with EnginePool(workers=8) as pool:
            for cell in cells:
                batch = run_batch(cell.fn, cell.trials, cell.seed, pool=pool)

    Workers fork on the first parallel call (so a ``workers=1`` pool never
    forks at all) and live until :meth:`close` / context exit.  Results are
    bit-for-bit identical to the serial path for any worker count; the pool
    affects wall-clock time only.

    The pool is thread-safe in the conservative sense: concurrent calls on
    the *same* pool are serialised on an internal per-pool lock.  Threads that
    need true concurrency should use one pool each — pools share no state, so
    (unlike the old module-level worker-function handoff) independent pools
    never serialise on each other.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise DomainError(f"workers must be at least 1, got {workers}")
        self._size = int(workers)
        self._handles: List[_WorkerHandle] = []
        self._started = False
        self._closed = False
        self._lock = threading.Lock()
        self._tokens = itertools.count()

    # -- introspection -----------------------------------------------------
    @property
    def workers(self) -> int:
        """Configured worker count (processes exist only after first use)."""
        return self._size

    @property
    def closed(self) -> bool:
        # Monitoring read: a stale False only delays the EngineError to the
        # next execute_spans call, which checks again under the lock.
        return self._closed  # repro: ignore[REP002] lock-free monitoring read

    @property
    def parallel(self) -> bool:
        """Whether this pool can actually fan out on this platform/process."""
        if self._size <= 1 or self._closed:  # repro: ignore[REP002] monitoring read
            return False
        if "fork" not in mp.get_all_start_methods():
            return False
        # Daemonic workers may not create child processes; nested engine use
        # degrades to the (identical) serial path instead of crashing.
        return not mp.current_process().daemon

    @property
    def alive_workers(self) -> int:
        """Number of currently-running worker processes (0 before first use)."""
        # Monitoring read; list() snapshots against concurrent close().
        handles = list(self._handles)  # repro: ignore[REP002] monitoring read
        return sum(1 for handle in handles if handle.process.is_alive())

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "EnginePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the workers down; idempotent. The pool cannot be reused after."""
        with self._lock:
            self._lock_free_close()

    def __del__(self):  # pragma: no cover - backstop for forgotten close()
        try:
            if self._started and not self._closed:
                self.close()
        except Exception:
            pass

    def _ensure_started(self) -> None:
        """Fork the workers on first use. Caller must hold ``self._lock``."""
        if self._closed:
            raise EngineError("EnginePool is closed and cannot run further work")
        if self._started:
            return
        context = mp.get_context("fork")
        for _ in range(self._size):
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            self._handles.append(
                _WorkerHandle(process=process, conn=parent_conn, sent_tokens=set())
            )
        self._started = True

    # -- execution ---------------------------------------------------------
    def execute_spans(
        self,
        fns: Sequence[Any],
        catches: Sequence[Tuple[type, ...]],
        spans: Sequence[Span],
        fail_fast: bool = False,
        profile: Optional[List[Tuple[int, float]]] = None,
    ) -> Tuple[List[Optional[tuple]], Dict[int, BaseException]]:
        """Execute ``spans`` across the workers; the pool's low-level entry.

        ``fns[j]``/``catches[j]`` describe job ``j`` (one batch or grid cell);
        each span names its job.  Returns ``(outputs, errors)`` where
        ``outputs[i]`` is the ``(results, indices, failures)`` triple of
        ``spans[i]`` (``None`` if it errored) and ``errors`` maps span index
        to the exception raised inside it.  Callers decide whether an error
        propagates (``run_batch``) or becomes a structured cell failure
        (``run_grid``); the pool itself survives either way.

        With ``fail_fast=True`` (used when the caller will propagate any
        error anyway) the first span error stops dispatch of still-queued
        spans; in-flight spans drain normally.  When several spans fail
        concurrently, which one's exception the caller ends up raising can
        then depend on scheduling — acceptable, since every span result was
        about to be discarded.

        ``profile`` is the observability hook: when a list is given, one
        ``(job, seconds)`` pair is appended per span that produced a result
        or error — wall clock around the in-process ``execute_span`` call
        for parent-fallback spans, dispatch-to-result time for spans run in
        a worker.  The hook is timing-only; it is never consulted for
        scheduling and cannot change any output.
        """
        with self._lock:
            return self._execute_spans_locked(fns, catches, spans, fail_fast, profile)

    def _execute_spans_locked(self, fns, catches, spans, fail_fast=False, profile=None):
        """Dispatch-loop body. Caller must hold ``self._lock``."""
        from repro.engine.core import execute_span

        outputs: List[Optional[tuple]] = [None] * len(spans)
        errors: Dict[int, BaseException] = {}

        payloads: List[Optional[tuple]] = []
        for fn in fns:
            try:
                payloads.append(encode_callable(fn))
            except CallableTransferError:
                payloads.append(None)

        def run_in_parent(span_id: int) -> None:
            span = spans[span_id]
            started = time.perf_counter()
            try:
                outputs[span_id] = execute_span(
                    fns[span.job], catches[span.job], span.start, span.seeds
                )
            except BaseException as exc:  # noqa: BLE001 - recorded per span
                errors[span_id] = exc
            if profile is not None:
                profile.append((span.job, time.perf_counter() - started))

        # Spans whose function cannot cross the pipe run in-process up front
        # (identical results by the determinism contract).
        parallel_ids = deque()
        for span_id, span in enumerate(spans):
            if payloads[span.job] is None:
                run_in_parent(span_id)
            else:
                parallel_ids.append(span_id)

        if not parallel_ids:
            return outputs, errors
        self._ensure_started()

        tokens = [next(self._tokens) for _ in fns]
        idle = deque(self._handles)
        inflight: Dict[Connection, Tuple[_WorkerHandle, int]] = {}

        def dispatch(handle: _WorkerHandle, span_id: int) -> None:
            span = spans[span_id]
            token = tokens[span.job]
            if token not in handle.sent_tokens:
                handle.conn.send(("fn", token, payloads[span.job]))
                handle.sent_tokens.add(token)
            handle.conn.send(
                ("span", span_id, token, catches[span.job], span.start, span.seeds)
            )
            inflight[handle.conn] = (handle, span_id, time.perf_counter())

        try:
            while parallel_ids or inflight:
                if fail_fast and errors:
                    parallel_ids.clear()
                while parallel_ids and idle:
                    dispatch(idle.popleft(), parallel_ids.popleft())
                if not inflight:
                    continue
                for conn in wait(list(inflight)):
                    handle, span_id, dispatched = inflight.pop(conn)
                    try:
                        message = conn.recv()
                    except EOFError:
                        raise EngineError(
                            f"engine worker pid={handle.process.pid} died while "
                            f"executing trials {spans[span_id].start}.."
                        ) from None
                    tag = message[0]
                    if tag in ("ok", "err") and profile is not None:
                        # fnerr spans re-run in the parent, which times itself.
                        profile.append(
                            (spans[span_id].job, time.perf_counter() - dispatched)
                        )
                    if tag == "ok":
                        outputs[message[1]] = message[2]
                    elif tag == "err":
                        errors[message[1]] = message[2]
                    elif tag == "fnerr":
                        # Worker could not decode the function (e.g. module not
                        # importable there): run this job's spans in-process.
                        failed_job = spans[message[1]].job
                        payloads[failed_job] = None
                        run_in_parent(message[1])
                        requeue = [s for s in parallel_ids if spans[s].job == failed_job]
                        for span_id_r in requeue:
                            parallel_ids.remove(span_id_r)
                            run_in_parent(span_id_r)
                    else:  # pragma: no cover - protocol violation
                        raise EngineError(f"unexpected worker message tag {tag!r}")
                    idle.append(handle)
        except (BrokenPipeError, OSError) as exc:
            # Structural failure: the pool is no longer trustworthy.
            self._lock_free_close()
            raise EngineError(f"engine worker pipe failed: {exc}") from exc
        except BaseException:
            # Any exception escaping the dispatch loop (EngineError, an
            # interrupt while blocked in wait()/recv, a signal-based timeout)
            # leaves in-flight results undrained in the worker pipes; a later
            # call on this pool would read them and misattribute results by a
            # stale span id.  Fence the pool: close it so reuse raises
            # EngineError instead of silently corrupting results.
            self._lock_free_close()
            raise
        # Release this call's function payloads in every worker that received
        # any (tokens are never reused, so this cannot race a later call).
        dropped = set(tokens)
        for handle in self._handles:
            sent = handle.sent_tokens & dropped
            if not sent:
                continue
            try:
                handle.conn.send(("drop", sorted(sent)))
            except (BrokenPipeError, OSError):  # pragma: no cover - torn down
                pass
            handle.sent_tokens -= sent
        return outputs, errors

    def _lock_free_close(self) -> None:
        """Shutdown body; callers must hold (or be) ``self._lock``."""
        self._closed = True
        handles, self._handles = self._handles, []
        self._started = False
        for handle in handles:
            try:
                handle.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            handle.conn.close()
        for handle in handles:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=1.0)

    # -- convenience -------------------------------------------------------
    def run_batch(self, trial_fn, trials, rng=None, **kwargs):
        """:func:`repro.engine.run_batch` bound to this pool."""
        from repro.engine.core import run_batch

        return run_batch(trial_fn, trials, rng, pool=self, **kwargs)

    def run_grid(self, cells, **kwargs):
        """:func:`repro.engine.run_grid` bound to this pool."""
        from repro.engine.grid import run_grid

        return run_grid(cells, pool=self, **kwargs)

    def __repr__(self) -> str:
        # repr is a lock-free monitoring read by design.
        state = "closed" if self._closed else ("started" if self._started else "lazy")  # repro: ignore[REP002]
        return f"EnginePool(workers={self._size}, {state})"


def default_chunk_size(trials: int, workers: int, jobs: int = 1) -> int:
    """Default span length: roughly four spans per worker across all jobs."""
    target_spans = max(1, workers * 4)
    per_job = max(1, round(target_spans / max(1, jobs)))
    return max(1, math.ceil(trials / per_job))
