"""Grid execution: fan whole *cells* (one batch each) across a shared pool.

The E-series benchmark drivers sweep parameter grids — sample size × epsilon ×
distribution × estimator — where every grid point ("cell") is one
:func:`~repro.engine.run_batch`.  :func:`run_grid` executes all cells of such
a sweep on one :class:`~repro.engine.EnginePool`, interleaving the spans of
every cell so the pool stays saturated even when cells are uneven.

Determinism contract (grid extension)
-------------------------------------
Before any work starts, each cell's per-trial seeds are derived from *that
cell's own* base seed via :func:`repro._rng.spawn_seeds`, in submission
order.  Consequences:

* a cell's results are bit-for-bit identical to running the same
  ``(trial_fn, trials, rng)`` through a fresh serial :func:`run_batch`;
* results are invariant to ``workers``, to chunking, and to the dynamic
  schedule (which worker ran which span);
* a failure inside one cell can never shift the randomness — or the results —
  of any other cell.

Cell failures
-------------
A trial exception that escapes a cell (i.e. not captured by that cell's
``allow_failures``) aborts only that cell.  With ``allow_cell_failures=True``
the cell becomes a structured :class:`CellFailure` record and every other
cell still completes; otherwise the earliest failing cell's exception
propagates after in-flight work drains.  The pool itself survives either
way and can serve further calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro._rng import RngLike, spawn_seeds
from repro.engine.core import BatchResult, TrialFn, execute_span, merge_span_outputs
from repro.exceptions import DomainError, EngineError, MechanismError

__all__ = ["GridCell", "CellFailure", "GridResult", "run_grid"]


@dataclass(frozen=True)
class GridCell:
    """One grid point: an independent batch of trials.

    Attributes
    ----------
    trial_fn:
        The cell's trial body, ``(trial_index, generator) -> result``.
    trials:
        Number of trials in the cell.
    rng:
        The cell's own base seed material (per-trial seeds are derived from
        it up-front).  Give each cell a distinct seed for independent
        randomness across cells.
    key:
        Optional label (e.g. the parameter tuple of the grid point) carried
        through to the result for lookup via :meth:`GridResult.by_key`.
    allow_failures, failure_types:
        Per-cell trial-failure capture, exactly as in :func:`run_batch`.
    chunk_size:
        Trials per dispatched span for this cell; defaults to a grid-wide
        heuristic.  Scheduling only — never affects results.
    """

    trial_fn: TrialFn
    trials: int
    rng: RngLike = None
    key: Any = None
    allow_failures: bool = False
    failure_types: Tuple[Type[BaseException], ...] = (MechanismError,)
    chunk_size: Optional[int] = None


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell whose batch aborted.

    Attributes
    ----------
    index:
        Position of the cell in the submitted sequence.
    key:
        The cell's ``key`` (``None`` if unset).
    error:
        Exception class name.
    message:
        The stringified exception.
    """

    index: int
    key: Any
    error: str
    message: str


@dataclass(frozen=True)
class GridResult:
    """Outcome of one :func:`run_grid` call.

    Attributes
    ----------
    batches:
        One :class:`~repro.engine.BatchResult` per cell, in submission order;
        ``None`` for cells recorded in ``failures``.
    keys:
        The cells' ``key`` labels, in submission order.
    failures:
        Structured records of aborted cells (empty unless
        ``allow_cell_failures=True`` and something failed).
    workers:
        Worker count of the pool that executed the grid (1 for serial).
    """

    batches: Tuple[Optional[BatchResult], ...]
    keys: Tuple[Any, ...]
    failures: Tuple[CellFailure, ...] = ()
    workers: int = 1
    _key_index: Dict[Any, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self):
        index: Dict[Any, int] = {}
        for position, key in enumerate(self.keys):
            if key is not None and key not in index:
                index[key] = position
        object.__setattr__(self, "_key_index", index)

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[Optional[BatchResult]]:
        return iter(self.batches)

    def __getitem__(self, index: int) -> BatchResult:
        batch = self.batches[index]
        if batch is None:
            position = index if index >= 0 else index + len(self.batches)
            failure = next(f for f in self.failures if f.index == position)
            raise DomainError(
                f"grid cell {position} (key={failure.key!r}) failed: "
                f"{failure.error}: {failure.message}"
            )
        return batch

    def by_key(self, key: Any) -> BatchResult:
        """The batch of the first cell submitted with ``key``."""
        if key not in self._key_index:
            raise DomainError(f"no grid cell with key {key!r}")
        return self[self._key_index[key]]

    @property
    def n_failures(self) -> int:
        """Number of aborted cells."""
        return len(self.failures)


def _cell_catch(cell: GridCell) -> Tuple[Type[BaseException], ...]:
    return tuple(cell.failure_types) if cell.allow_failures else ()


def _assemble(
    cell: GridCell, outputs: List[tuple], workers: int
) -> BatchResult:
    results, indices, failures = merge_span_outputs(outputs)
    return BatchResult(
        results=tuple(results),
        indices=tuple(indices),
        failures=tuple(failures),
        trials=cell.trials,
        workers=workers,
    )


def run_grid(
    cells: Sequence[GridCell],
    *,
    workers: Optional[int] = 1,
    pool=None,
    allow_cell_failures: bool = False,
    profile: Optional[Dict[int, float]] = None,
) -> GridResult:
    """Execute every cell of a parameter grid, fanning spans across one pool.

    Parameters
    ----------
    cells:
        The grid points, each an independent :class:`GridCell`.
    workers:
        Pool size when no explicit ``pool`` is given; ``1`` (default) runs
        the whole grid serially in submission order, ``None`` uses
        ``os.cpu_count()``.  Results are bit-for-bit independent of this
        value.
    pool:
        An open :class:`~repro.engine.EnginePool`; lets many ``run_grid`` /
        ``run_batch`` calls share one set of forked workers.
    allow_cell_failures:
        When ``True``, a cell whose batch aborts becomes a
        :class:`CellFailure` record and the remaining cells still run;
        otherwise the earliest failing cell's exception propagates.
    profile:
        Optional mutable dict receiving per-cell wall-clock seconds
        (``profile[position] += elapsed``, summed over the cell's spans).
        On the pool path this is the sum of dispatch-to-result times of the
        cell's spans, so overlapping spans may sum past the call's own wall
        clock.  Purely observational: never consulted for scheduling, and
        by the determinism contract it cannot affect any result.
    """
    from repro.engine.pool import EnginePool, Span, default_chunk_size

    cells = list(cells)
    for position, cell in enumerate(cells):
        if cell.trials < 0:
            raise DomainError(
                f"cell {position} (key={cell.key!r}): trials must be "
                f"non-negative, got {cell.trials}"
            )
        if cell.chunk_size is not None and cell.chunk_size < 1:
            raise DomainError(
                f"cell {position} (key={cell.key!r}): chunk_size must be at "
                f"least 1, got {cell.chunk_size}"
            )
    if workers is not None and workers < 1:
        raise DomainError(f"workers must be at least 1, got {workers}")
    if pool is not None and pool.closed:
        raise EngineError("cannot run_grid on a closed EnginePool")

    # Derive every cell's seeds up-front, in submission order: this is the
    # whole determinism contract — nothing that happens later (scheduling,
    # chunking, failures elsewhere) can change what randomness any trial sees.
    seed_arrays = [spawn_seeds(cell.rng, cell.trials) for cell in cells]
    catches = [_cell_catch(cell) for cell in cells]
    keys = tuple(cell.key for cell in cells)

    total_trials = sum(cell.trials for cell in cells)
    ephemeral: Optional[EnginePool] = None
    if pool is None and total_trials:
        size = workers  # None means cpu_count inside EnginePool
        candidate = EnginePool(size) if (size is None or size > 1) else None
        if candidate is not None and candidate.parallel:
            ephemeral = candidate
    active = pool if pool is not None else ephemeral

    batches: List[Optional[BatchResult]] = [None] * len(cells)
    failures: List[CellFailure] = []

    def record_cell_error(position: int, exc: BaseException) -> None:
        failures.append(
            CellFailure(
                index=position,
                key=cells[position].key,
                error=type(exc).__name__,
                message=str(exc),
            )
        )

    if active is None or not active.parallel:
        # Serial reference path (also the nested / no-fork degradation).
        for position, cell in enumerate(cells):
            started = time.perf_counter()
            try:
                outputs = [
                    execute_span(cell.trial_fn, catches[position], 0, seed_arrays[position])
                ]
            except Exception as exc:
                if profile is not None:
                    profile[position] = profile.get(position, 0.0) + (
                        time.perf_counter() - started
                    )
                if not allow_cell_failures:
                    raise
                record_cell_error(position, exc)
                continue
            if profile is not None:
                profile[position] = profile.get(position, 0.0) + (
                    time.perf_counter() - started
                )
            batches[position] = _assemble(cell, outputs, workers=1)
        used = 1
    else:
        effective = active.workers
        spans: List[Span] = []
        for position, cell in enumerate(cells):
            chunk = cell.chunk_size
            if chunk is None:
                chunk = default_chunk_size(cell.trials, effective, jobs=len(cells))
            for start in range(0, cell.trials, chunk):
                spans.append(
                    Span(
                        job=position,
                        start=start,
                        seeds=seed_arrays[position][start : start + chunk],
                    )
                )
        span_profile: Optional[List[Tuple[int, float]]] = (
            [] if profile is not None else None
        )
        try:
            outputs, errors = active.execute_spans(
                [cell.trial_fn for cell in cells],
                catches,
                spans,
                fail_fast=not allow_cell_failures,
                profile=span_profile,
            )
        finally:
            if ephemeral is not None:
                ephemeral.close()
        if profile is not None and span_profile is not None:
            for job, seconds in span_profile:
                profile[job] = profile.get(job, 0.0) + seconds

        # Attribute span errors to cells; each cell's earliest erroring span
        # (smallest start) carries the exception the serial path would raise.
        cell_error: Dict[int, Tuple[int, BaseException]] = {}
        for span_id, exc in errors.items():
            # Interrupts are never "cell failures": the serial path would
            # propagate them, so the parallel path must too, even under
            # allow_cell_failures.
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise exc
            span = spans[span_id]
            current = cell_error.get(span.job)
            if current is None or span.start < current[0]:
                cell_error[span.job] = (span.start, exc)
        if cell_error and not allow_cell_failures:
            raise cell_error[min(cell_error)][1]

        per_cell_outputs: List[List[Tuple[int, tuple]]] = [[] for _ in cells]
        for span_id, output in enumerate(outputs):
            if output is None:
                continue
            span = spans[span_id]
            per_cell_outputs[span.job].append((span.start, output))
        for position, cell in enumerate(cells):
            if position in cell_error:
                record_cell_error(position, cell_error[position][1])
                continue
            ordered = [out for _, out in sorted(per_cell_outputs[position])]
            # Per-cell workers mirrors run_batch's metadata: a cell with
            # fewer trials than the pool has workers cannot use them all.
            batches[position] = _assemble(
                cell, ordered, workers=max(1, min(effective, cell.trials))
            )
        used = effective

    return GridResult(
        batches=tuple(batches),
        keys=keys,
        failures=tuple(failures),
        workers=used,
    )
