"""Deterministic consistent-hash ring for the cluster router.

Nodes (shard labels) are projected onto a 64-bit ring at ``replicas``
points each, derived from SHA-1 of ``"{node}#{index}"``.  A key is owned
by the first node point clockwise from the key's own hash.  SHA-1 rather
than Python's built-in ``hash`` because the built-in is salted per
process: the router, the compose planner and the tests must all agree on
ownership without sharing state.

The two properties the cluster relies on fall out of the construction:

* **Adding** an (N+1)-th node inserts new points that each steal only the
  arc between themselves and their predecessor — in expectation
  ``1/(N+1)`` of all keys move, and every key that moves, moves *to* the
  new node.
* **Removing** a node deletes only that node's points, so the arcs of the
  surviving nodes are untouched: a key the removed node did not own keeps
  its owner exactly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable, List, Optional, Sequence

__all__ = ["HashRing", "route_key"]

#: Ring points carved out per node.  64 keeps the per-node load within a
#: few percent of uniform for the shard counts compose targets (2..16)
#: while the full ring stays a few hundred entries — lookups are one
#: ``bisect`` on a list that fits in cache.
DEFAULT_REPLICAS = 64


def _hash64(value: str) -> int:
    """Map ``value`` to a stable 64-bit ring position."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over an arbitrary set of node labels."""

    def __init__(
        self,
        nodes: Iterable[Hashable] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be a positive integer")
        self._replicas = int(replicas)
        self._hashes: List[int] = []  # sorted ring positions
        self._owners: List[Hashable] = []  # node at the matching position
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    # -- membership ---------------------------------------------------------
    def add(self, node: Hashable) -> None:
        """Insert ``node`` at its ``replicas`` ring points."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for index in range(self._replicas):
            point = _hash64(f"{node!r}#{index}")
            at = bisect.bisect(self._hashes, point)
            # SHA-1 collisions on 64 bits across a few hundred points are
            # not a practical concern; ties resolve by insertion order.
            self._hashes.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: Hashable) -> None:
        """Delete ``node``'s points, leaving every other arc untouched."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._hashes, self._owners)
            if owner != node
        ]
        self._hashes = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # -- lookup -------------------------------------------------------------
    def owner(self, key: str) -> Hashable:
        """Return the node owning ``key`` (first point clockwise)."""
        if not self._hashes:
            raise ValueError("cannot route on an empty ring")
        at = bisect.bisect(self._hashes, _hash64(key))
        if at == len(self._hashes):
            at = 0  # wrap past twelve o'clock
        return self._owners[at]

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes


def route_key(
    dataset: str,
    kind: Optional[str],
    *,
    pinned: Sequence[str] = (),
) -> str:
    """Build the ring key the router hashes for a request.

    Datasets that belong to a joint budget group spread across every shard
    on ``dataset|kind`` — their ledger lives in the coordinator, so any
    shard may serve them and the per-kind spread maximises cache locality
    per shard.  Datasets with a *private* budget are ``pinned``: they hash
    on the dataset name alone so a single shard sees all their spend and
    the shard-local ``BudgetManager`` stays exact without any RPC.
    """
    if dataset in pinned or not kind:
        return dataset
    return f"{dataset}|{kind}"
