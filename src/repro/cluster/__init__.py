"""``repro.cluster`` — the multi-process sharded serving tier.

The single-process query service (``repro.service``) is bit-for-bit
deterministic but tops out at one GIL.  This package scales it horizontally
without touching its semantics:

``ring``
    A deterministic consistent-hash ring.  The router hashes requests on
    their ``(dataset, kind)`` route key so every query for the same cache
    key always lands on the same shard, adding a shard remaps only
    ~1/(N+1) of keys, and removing one never moves keys it did not own.

``rpc``
    A line-delimited-JSON TCP client for the budget coordinator, plus the
    framing shared with the server.  Pure stdlib, no ``repro.service``
    imports — the service layer imports *us*, never the reverse.

``coordinator``
    The process that owns the ``BudgetManager`` for every joint budget
    group spanning shards.  The registry's existing group semantics
    (peek/reserve/commit/cancel) *are* the RPC surface, so reserve→commit
    stays atomic cluster-wide.  Shard-local datasets with private budgets
    never pay the RPC round-trip — the router pins them to one shard.

``router``
    A stdlib HTTP front-end that forwards the v1 wire envelope verbatim
    (including trace ids, so one trace id spans router→shard) over
    keep-alive connections, and answers ``/health``, ``/datasets`` and
    ``/metrics`` as cluster-level aggregations of the shards' surfaces.

``compose``
    ``pods-compose``-style lifecycle management (``--up/--down/--ps/
    --generate``): one serving config in, per-shard configs out (port
    allocation, shared seed so any shard answers bit-for-bit identically,
    coordinator endpoint wiring), with supervised start-up and clean
    teardown of the coordinator + shard + router processes.

Budget discipline in this package is enforced by lint rule REP008: no
module here other than ``coordinator.py`` may construct or mutate a
``BudgetManager`` — the coordinator RPC client is the only budget path in
the router/compose layer.
"""

from repro.cluster.ring import HashRing, route_key
from repro.cluster.rpc import CoordinatorClient

__all__ = ["HashRing", "route_key", "CoordinatorClient"]
