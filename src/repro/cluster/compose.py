"""``repro compose``: one config in, a supervised shard cluster out.

pods-compose style orchestration for the sharded serving tier, pure stdlib:
given one serving config with a ``[cluster]`` section, this module

1. **generates** the deployment (``--generate``): per-shard serving configs
   (JSON — same grammar as the TOML, one allocated port each, the *shared*
   seed so replicas answer bit-for-bit identically, the coordinator
   endpoint wired into ``[cluster]``, per-shard audit-log paths so each
   hash chain has exactly one writer) plus the router plan;
2. **supervises** (``--up``): boots the budget coordinator, the shard
   replicas (each a stock ``repro serve --config shard_N.json`` process)
   and the router, waits for each to answer, and records pids/ports in
   ``state.json``;
3. **reports** (``--ps``) and **tears down** (``--down``: SIGTERM, bounded
   wait, SIGKILL stragglers).

Every process logs to its own file under the compose directory
(``coordinator.log``, ``shard0.log`` … ``router.log``) — the CI cluster job
greps them for tracebacks and verifies every shard's audit chain.

The module is deliberately *processes-only*: it never constructs a service,
a budget, or a ledger in-process (lint rule REP008 enforces the budget part
for the whole package) — the cluster a test drives through
:class:`ComposeHandle` is exactly the cluster an operator gets from the
CLI.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import DomainError

__all__ = [
    "ComposePlan",
    "ComposeHandle",
    "generate_plan",
    "compose_up",
    "compose_down",
    "compose_ps",
]

#: Seconds a process gets to answer its readiness probe at --up.
_READY_TIMEOUT = 30.0

#: Seconds between SIGTERM and SIGKILL at --down.
_TERM_GRACE = 5.0


def _free_port(host: str = "127.0.0.1") -> int:
    """One currently-free TCP port (probe-bind; raceable but fine for tests)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _child_env() -> Dict[str, str]:
    """Child process environment: ensure ``repro`` stays importable.

    The compose parent may run from a source checkout (``PYTHONPATH=src``)
    rather than an installed package; children must resolve the same
    package, so its parent directory is prepended to their ``PYTHONPATH``.
    """
    import repro

    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [package_parent] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


@dataclass
class ComposePlan:
    """A generated deployment: every file and port the cluster runs from."""

    directory: Path
    host: str
    shards: int
    coordinator_port: int
    router_port: int
    shard_ports: List[int]
    shard_configs: List[Path]
    router_plan: Path
    pinned: List[str]

    def to_json(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "shards": self.shards,
            "coordinator_port": self.coordinator_port,
            "router_port": self.router_port,
            "shard_ports": list(self.shard_ports),
            "shard_configs": [str(path) for path in self.shard_configs],
            "router_plan": str(self.router_plan),
            "pinned": list(self.pinned),
        }


def generate_plan(
    config_path: Any,
    directory: Any,
    *,
    shards: Optional[int] = None,
) -> ComposePlan:
    """Write the per-shard configs and router plan for one cluster deployment.

    ``shards`` overrides the config's ``[cluster] shards=`` count.  The
    template must carry an explicit ``[service] seed=`` (bit-for-bit parity
    across replicas is a hard requirement, not a default) — a missing seed
    fails here, before any process starts.
    """
    from repro.service.config import (
        load_serving_config,
        load_serving_document,
        shard_document,
    )

    config_path = Path(config_path).resolve()
    directory = Path(directory).resolve()  # children run with cwd=directory
    directory.mkdir(parents=True, exist_ok=True)
    config = load_serving_config(config_path)  # full validation first
    document = load_serving_document(config_path)
    cluster = config.cluster
    count = int(shards) if shards is not None else (
        cluster.shards if cluster is not None else 1
    )
    if count < 1:
        raise DomainError(f"compose: shard count must be >= 1, got {count}")
    host = config.host
    coordinator_port = (
        cluster.coordinator_port if cluster and cluster.coordinator_port else 0
    ) or _free_port(host)
    router_port = (
        cluster.router_port if cluster and cluster.router_port else 0
    ) or _free_port(host)
    base = cluster.shard_base_port if cluster else 0
    shard_ports = [
        (base + index) if base else _free_port(host) for index in range(count)
    ]
    coordinator = f"{host}:{coordinator_port}"
    shard_configs: List[Path] = []
    for index in range(count):
        shard = shard_document(
            document,
            shard_index=index,
            shard_port=shard_ports[index],
            coordinator=coordinator,
            base_dir=config_path.parent,
        )
        shard["cluster"]["shards"] = count
        path = directory / f"shard{index}.json"
        path.write_text(json.dumps(shard, indent=2) + "\n")
        shard_configs.append(path)
    # Private-budget datasets pin to one shard: their ledger is shard-local.
    pinned = sorted(
        dataset.name for dataset in config.datasets if dataset.group is None
    )
    trace_ring = (
        config.observability.trace_ring if config.observability is not None else 256
    )
    router_plan = directory / "router.json"
    router_plan.write_text(json.dumps({
        "host": host,
        "port": router_port,
        "shards": [
            {"index": index, "host": host, "port": shard_ports[index]}
            for index in range(count)
        ],
        "pinned": pinned,
        "trace_ring": trace_ring,
        "quiet": True,
    }, indent=2) + "\n")
    plan = ComposePlan(
        directory=directory,
        host=host,
        shards=count,
        coordinator_port=coordinator_port,
        router_port=router_port,
        shard_ports=shard_ports,
        shard_configs=shard_configs,
        router_plan=router_plan,
        pinned=pinned,
    )
    (directory / "plan.json").write_text(json.dumps(plan.to_json(), indent=2) + "\n")
    return plan


@dataclass
class ComposeHandle:
    """A running cluster: process handles plus the plan that produced it."""

    plan: ComposePlan
    processes: Dict[str, subprocess.Popen] = field(default_factory=dict)

    @property
    def router_url(self) -> str:
        return f"http://{self.plan.host}:{self.plan.router_port}"

    @property
    def coordinator_endpoint(self) -> Tuple[str, int]:
        return (self.plan.host, self.plan.coordinator_port)

    def shard_url(self, index: int) -> str:
        return f"http://{self.plan.host}:{self.plan.shard_ports[index]}"

    def down(self) -> None:
        _stop_processes(
            {name: process.pid for name, process in self.processes.items()},
            reap=self.processes,
        )
        self.processes.clear()
        state = self.plan.directory / "state.json"
        if state.exists():
            state.unlink()

    def __enter__(self) -> "ComposeHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.down()


def _spawn(name: str, argv: List[str], directory: Path) -> subprocess.Popen:
    """Start one supervised process, logging to ``<name>.log``."""
    log = open(directory / f"{name}.log", "ab")
    try:
        process = subprocess.Popen(
            argv,
            stdout=log,
            stderr=subprocess.STDOUT,
            env=_child_env(),
            cwd=str(directory),
        )
    finally:
        log.close()  # the child holds its own descriptor
    return process


def _wait_http_ready(url: str, deadline: float, name: str) -> None:
    import urllib.error
    import urllib.request

    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/health", timeout=2.0) as response:
                if response.status == 200:
                    return
        except (urllib.error.URLError, OSError, ConnectionError):
            time.sleep(0.05)
    raise DomainError(
        f"compose: {name} did not answer {url}/health within the startup window"
    )


def _wait_coordinator_ready(host: str, port: int, deadline: float) -> None:
    from repro.cluster.rpc import CoordinatorClient
    from repro.exceptions import CoordinatorUnavailableError

    while time.monotonic() < deadline:
        client = CoordinatorClient(host, port, timeout=2.0)
        try:
            client.ping()
            return
        except CoordinatorUnavailableError:
            time.sleep(0.05)
        finally:
            client.close()
    raise DomainError(
        f"compose: coordinator did not answer ping on {host}:{port} "
        "within the startup window"
    )


def compose_up(
    config_path: Any,
    directory: Any,
    *,
    shards: Optional[int] = None,
    ready_timeout: float = _READY_TIMEOUT,
) -> ComposeHandle:
    """Generate (if needed) and boot the full tier; blocks until ready.

    Boot order is dependency order — coordinator, then shards (whose group
    proxies issue their ``create`` RPC at build time), then the router —
    and each stage is probed before the next starts, so a handle you get
    back is a cluster that answers.  Any failure tears down what already
    started.
    """
    plan = generate_plan(config_path, directory, shards=shards)
    handle = ComposeHandle(plan=plan)
    try:
        handle.processes["coordinator"] = _spawn(
            "coordinator",
            [
                sys.executable, "-m", "repro.cluster.coordinator",
                "--host", plan.host, "--port", str(plan.coordinator_port),
                "--quiet",
            ],
            plan.directory,
        )
        _wait_coordinator_ready(
            plan.host, plan.coordinator_port, time.monotonic() + ready_timeout
        )
        for index, config in enumerate(plan.shard_configs):
            handle.processes[f"shard{index}"] = _spawn(
                f"shard{index}",
                [
                    sys.executable, "-m", "repro", "serve",
                    "--config", str(config), "--quiet",
                ],
                plan.directory,
            )
        for index in range(plan.shards):
            _wait_http_ready(
                handle.shard_url(index),
                time.monotonic() + ready_timeout,
                f"shard{index}",
            )
        handle.processes["router"] = _spawn(
            "router",
            [
                sys.executable, "-m", "repro.cluster.router",
                "--plan", str(plan.router_plan),
            ],
            plan.directory,
        )
        _wait_http_ready(
            handle.router_url, time.monotonic() + ready_timeout, "router"
        )
    except BaseException:
        handle.down()
        raise
    state = {
        "plan": plan.to_json(),
        "processes": {
            name: process.pid for name, process in handle.processes.items()
        },
    }
    (plan.directory / "state.json").write_text(json.dumps(state, indent=2) + "\n")
    return handle


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by someone else
        return True
    return True


def _stop_processes(
    pids: Dict[str, int], *, reap: Optional[Dict[str, subprocess.Popen]] = None
) -> None:
    """SIGTERM each pid, wait out the grace window, SIGKILL stragglers."""
    for pid in pids.values():
        try:
            os.kill(pid, signal.SIGTERM)
        except ProcessLookupError:
            pass
    deadline = time.monotonic() + _TERM_GRACE
    if reap:
        for process in reap.values():
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        return
    while time.monotonic() < deadline:
        if not any(_pid_alive(pid) for pid in pids.values()):
            return
        time.sleep(0.1)
    for pid in pids.values():
        if _pid_alive(pid):
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass


def _load_state(directory: Path) -> Optional[Dict[str, Any]]:
    state_path = directory / "state.json"
    if not state_path.exists():
        return None
    return json.loads(state_path.read_text())


def compose_down(directory: Any) -> int:
    """Stop every process recorded in ``state.json``; returns count stopped."""
    directory = Path(directory)
    state = _load_state(directory)
    if state is None:
        return 0
    pids = {name: int(pid) for name, pid in state.get("processes", {}).items()}
    _stop_processes(pids)
    (directory / "state.json").unlink()
    return len(pids)


def compose_ps(directory: Any) -> List[Dict[str, Any]]:
    """Liveness report for a composed cluster (from ``state.json``)."""
    directory = Path(directory)
    state = _load_state(directory)
    if state is None:
        return []
    plan = state.get("plan", {})
    host = plan.get("host", "127.0.0.1")
    ports: Dict[str, Optional[int]] = {
        "coordinator": plan.get("coordinator_port"),
        "router": plan.get("router_port"),
    }
    for index, port in enumerate(plan.get("shard_ports", [])):
        ports[f"shard{index}"] = port
    report = []
    for name, pid in sorted(state.get("processes", {}).items()):
        report.append({
            "name": name,
            "pid": int(pid),
            "alive": _pid_alive(int(pid)),
            "address": f"{host}:{ports.get(name)}" if ports.get(name) else None,
        })
    return report
