"""Consistent-hashing HTTP router: the front door of a sharded serving tier.

One stdlib :class:`~http.server.ThreadingHTTPServer` that owns **no budget
and no data** — it speaks the exact v1 wire protocol of a single
:mod:`repro.service.http` process and forwards every query to the shard
replica that owns its route key:

* **Group-member datasets** hash on ``(dataset, kind)`` — their joint
  budget lives in the coordinator, so *any* replica answers identically and
  spreading kinds across shards maximises cache locality per shard.
* **Private-budget datasets** are *pinned*: they hash on the dataset name
  alone, so exactly one shard sees all their spend and their local ledger
  stays authoritative with zero coordinator round-trips.

Because every shard boots from the same config and seed, answers are
**bit-for-bit identical** wherever a query lands — routing is a cache- and
ledger-locality decision, never a correctness one.  That same determinism
makes forwarding retries safe: a query replayed after a stale keep-alive
connection either hits the shard's answer cache or coalesces with the
in-flight execution, so it can never double-spend.

Routing is deterministic, so a dead shard is answered honestly with a 503
``shard_unavailable`` document (batch entries get an answer-shaped refusal
via :func:`repro.service.wire.shard_unavailable_answer`) rather than being
silently retried on a replica that does not own the key's cache or ledger.

Cluster-level read surfaces aggregate the shard fleet:

``GET /health``
    ``status`` is ``"ok"`` only when every shard answers; ``datasets`` is
    the union; ``shards`` counts total/healthy.
``GET /datasets``
    The single-process stats shape (``datasets`` / ``groups`` / ``cache`` /
    ``spend``), assembled so existing clients — including ``repro audit
    spend --url`` — keep working: pinned datasets come from their owning
    shard, group budgets from any live shard (they are coordinator-owned
    and therefore consistent), cache counters are summed, and per-shard
    detail lands under a new ``cluster`` key.
``GET /metrics``
    Prometheus text: router counters plus per-shard ``up`` gauges and the
    summed cache counters.
``GET /kinds``
    Proxied from the first live shard (the catalogue is identical
    everywhere by construction).
``GET /debug/traces``
    The router's *own* trace ring.  A traced ``POST /query`` propagates its
    trace id to the owning shard via ``X-Repro-Trace-Id``, so one id can be
    looked up on the router (parse/route/forward/serialize spans) *and* on
    the shard (admission/execution spans) — a single trace spanning the
    tier.

Run it with ``python -m repro.cluster.router --plan router.json`` (written
by ``repro compose``); the plan carries the bind address, the shard
endpoints and the pinned-dataset list.
"""

from __future__ import annotations

import http.client
import json
import signal
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.ring import HashRing, route_key
from repro.obs import span as obs_span
from repro.service import wire
from repro.service.http import DEFAULT_MAX_BODY
from repro.service.metrics import PROMETHEUS_CONTENT_TYPE

__all__ = [
    "ShardEndpoint",
    "ShardUnavailable",
    "RouterServer",
    "make_router",
    "serve_router",
    "main",
]

#: Transport-level failures talking to a shard (connection refused, reset,
#: truncated response).  Routing is deterministic, so these surface as 503
#: ``shard_unavailable`` rather than a retry on a non-owning replica.
_TRANSPORT_ERRORS = (OSError, http.client.HTTPException)

#: Idle keep-alive connections retained per shard; beyond this they close.
_POOL_SIZE = 32


class ShardUnavailable(Exception):
    """The owning shard could not be reached (after one fresh-connection retry)."""


class ShardEndpoint:
    """One shard replica: its address plus a keep-alive connection pool.

    Connections are pooled per shard and reused across router handler
    threads.  A transport failure on a pooled connection is retried once on
    a fresh one — safe for every surface the router forwards: GETs are
    reads, and query execution is deterministic and cached, so a replay
    can only hit the cache or coalesce, never spend twice.
    """

    def __init__(self, index: int, host: str, port: int, *, timeout: float = 30.0):
        self.index = int(index)
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._idle: List[http.client.HTTPConnection] = []

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _acquire(self) -> Tuple[http.client.HTTPConnection, bool]:
        """A pooled connection (reused=True) or a fresh one (reused=False)."""
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout), False

    def _release(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < _POOL_SIZE:
                self._idle.append(connection)
                return
        connection.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        """One forwarded request; returns ``(status, body_bytes)``.

        Retries exactly once on a fresh connection when the first attempt
        used a pooled (possibly stale) one; raises :class:`ShardUnavailable`
        when the shard is genuinely unreachable.
        """
        send_headers = {"Connection": "keep-alive", **(headers or {})}
        connection, reused = self._acquire()
        for attempt in (0, 1):
            try:
                connection.request(method, path, body=body, headers=send_headers)
                response = connection.getresponse()
                payload = response.read()
                self._release(connection)
                return response.status, payload
            except _TRANSPORT_ERRORS as exc:
                connection.close()
                if attempt == 0 and reused:
                    connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                    continue
                raise ShardUnavailable(f"{type(exc).__name__}: {exc}") from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def request_json(
        self,
        method: str,
        path: str,
        document: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any]:
        body = None
        send_headers = dict(headers or {})
        if document is not None:
            body = json.dumps(document).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        status, payload = self.request(method, path, body, send_headers)
        try:
            return status, json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShardUnavailable(
                f"shard returned a non-JSON body for {method} {path}: {exc}"
            ) from exc

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()


def _sum_counters(documents: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Key-wise sum of numeric counters (cache stats across shards)."""
    total: Dict[str, Any] = {}
    for document in documents:
        for key, value in document.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            total[key] = total.get(key, 0) + value
    if documents and "hits" in total and "misses" in total:
        lookups = total["hits"] + total["misses"]
        total["hit_rate"] = (total["hits"] / lookups) if lookups else 0.0
    return total


class _RouterHandler(BaseHTTPRequestHandler):
    """Routes by key, forwards verbatim, aggregates the read surfaces."""

    server: "RouterServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing (mirrors the shard front-end's hardening) ------------------
    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        self._send_body(code, json.dumps(payload).encode("utf-8"), "application/json")

    def _send_body(self, code: int, body: bytes, content_type: str) -> None:
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if self.close_connection:
                self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)
        except _TRANSPORT_ERRORS:
            self.server.count("disconnects")
            self.close_connection = True

    def _read_json(self) -> Any:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
            if length < 0:
                raise ValueError
        except (TypeError, ValueError):
            self.close_connection = True
            raise _BadRequest(
                f"Content-Length must be a non-negative integer, got {raw_length!r}"
            ) from None
        max_body = self.server.max_body
        if max_body is not None and length > max_body:
            self.close_connection = True
            raise _TooLarge(length)
        raw = self.rfile.read(length) if length else b""
        if len(raw) < length:
            raise _Disconnect
        if not raw:
            raise _BadRequest("request body is empty")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}") from None

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if self.server.quiet:
            return
        super().log_message(format, *args)

    # -- GET: aggregated read surfaces --------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self.server.count("requests")
        try:
            if self.path == "/health":
                self._send_json(*self.server.health_document())
            elif self.path == "/datasets":
                self._send_json(*self.server.stats_document())
            elif self.path == "/kinds":
                self._send_json(*self.server.proxy_first_live("GET", "/kinds"))
            elif self.path == "/metrics":
                self._send_body(
                    200,
                    self.server.metrics_text().encode("utf-8"),
                    PROMETHEUS_CONTENT_TYPE,
                )
            elif self.path == "/debug/traces" or self.path.startswith("/debug/traces/"):
                self._handle_traces()
            else:
                self._send_json(404, wire.unknown_path("GET", self.path))
        except _TRANSPORT_ERRORS:
            self.server.count("disconnects")
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            self._send_json(500, wire.internal_error(exc))

    def _handle_traces(self) -> None:
        tracer = self.server.tracer
        if tracer is None:
            self._send_json(404, wire.tracing_disabled())
            return
        if self.path == "/debug/traces":
            self._send_json(200, wire.traces_document(tracer))
            return
        code, doc = wire.trace_document(tracer, self.path[len("/debug/traces/"):])
        self._send_json(code, doc)

    # -- POST: query forwarding ---------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self.server.count("requests")
        try:
            if self.path == "/query":
                self._handle_query()
            elif self.path == "/datasets":
                self._send_json(403, wire.registration_disabled())
            elif self.path.startswith("/admin"):
                self._send_json(
                    403,
                    wire.error_document(
                        "admin_disabled",
                        "the router exposes no admin plane; "
                        "address a shard's /admin surface directly",
                    ),
                )
            else:
                self._send_json(404, wire.unknown_path("POST", self.path))
        except _Disconnect:
            self.server.count("disconnects")
            self.close_connection = True
        except _TooLarge as exc:
            self._send_json(413, wire.too_large(exc.length, self.server.max_body))
        except _BadRequest as exc:
            self._send_json(400, wire.bad_request(str(exc)))
        except _TRANSPORT_ERRORS:
            self.server.count("disconnects")
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - must never leak a traceback
            self._send_json(500, wire.internal_error(exc))

    def _handle_query(self) -> None:
        """Route one ``POST /query`` (single or batch) under a router trace.

        The payload is *peeked* for routing only — ``dataset`` and ``kind``
        pick the owning shard — and the client's envelope is forwarded
        verbatim, so the shard performs all validation and the router can
        never drift from the wire contract.  Requests missing either field
        still forward (to a deterministic shard) so the client receives the
        shard's authoritative 400.
        """
        tracer = self.server.tracer
        trace = None
        if tracer is not None:
            trace = tracer.start(self.headers.get("X-Repro-Trace-Id"), frontend="router")
        trace_id = trace.trace_id if trace is not None else None
        # Propagate the router's trace id (or the client's, untraced) so the
        # shard's trace ring holds the same id: one trace spans the tier.
        forward_id = trace_id or self.headers.get("X-Repro-Trace-Id")
        headers = {"X-Repro-Trace-Id": forward_id} if forward_id else {}
        try:
            with obs_span(trace, "parse"):
                payload = self._read_json()
            if isinstance(payload, dict) and "queries" in payload:
                status, document = self._forward_batch(payload, headers, trace)
            else:
                status, document = self._forward_single(payload, headers, trace)
        finally:
            if tracer is not None and trace is not None:
                tracer.finish(trace)
        self._send_json(status, wire.with_trace(document, trace_id))

    def _route(self, entry: Any) -> int:
        """The owning shard index for one query object (deterministic)."""
        dataset = kind = ""
        if isinstance(entry, dict):
            dataset = str(entry.get("dataset") or "")
            kind = str(entry.get("kind") or "")
        return self.server.owner(dataset, kind)

    def _forward_single(
        self, payload: Any, headers: Dict[str, str], trace
    ) -> Tuple[int, Dict[str, Any]]:
        with obs_span(trace, "route") as info:
            shard = self.server.shards[self._route(payload)]
            info["shard"] = shard.index
        if trace is not None and isinstance(payload, dict):
            trace.annotate(
                dataset=payload.get("dataset"), kind=payload.get("kind"),
                shard=shard.index,
            )
        try:
            with obs_span(trace, "forward", shard=shard.index):
                status, document = shard.request_json(
                    "POST", "/query", payload, headers
                )
            self.server.count("forwarded")
        except ShardUnavailable as exc:
            self.server.count("shard_errors")
            if trace is not None:
                trace.annotate(status="shard_unavailable")
            return 503, wire.shard_unavailable(shard.index, str(exc))
        return status, document

    def _forward_batch(
        self, payload: Dict[str, Any], headers: Dict[str, str], trace
    ) -> Tuple[int, Dict[str, Any]]:
        entries = payload.get("queries")
        if not isinstance(entries, list):
            raise _BadRequest("'queries' must be a list of query objects")
        with obs_span(trace, "route", queries=len(entries)) as info:
            partitions: Dict[int, List[int]] = {}
            for index, entry in enumerate(entries):
                partitions.setdefault(self._route(entry), []).append(index)
            info["shards"] = sorted(partitions)
        if trace is not None:
            trace.annotate(queries=len(entries), shards=len(partitions))
        docs: List[Optional[Dict[str, Any]]] = [None] * len(entries)

        def forward(shard_index: int, positions: List[int]) -> None:
            shard = self.server.shards[shard_index]
            sub = {"queries": [entries[position] for position in positions]}
            try:
                status, document = shard.request_json("POST", "/query", sub, headers)
                answers = document.get("answers") if isinstance(document, dict) else None
                if status != 200 or not isinstance(answers, list):
                    raise ShardUnavailable(
                        f"batch forward answered {status}, not a batch document"
                    )
                self.server.count("forwarded")
                for position, answer in zip(positions, answers):
                    docs[position] = answer
            except ShardUnavailable as exc:
                self.server.count("shard_errors")
                for position in positions:
                    entry = entries[position]
                    dataset = kind = None
                    if isinstance(entry, dict):
                        dataset, kind = entry.get("dataset"), entry.get("kind")
                    docs[position] = wire.shard_unavailable_answer(
                        dataset, kind, shard_index, str(exc)
                    )

        with obs_span(trace, "forward", shards=len(partitions)):
            if len(partitions) == 1:
                ((shard_index, positions),) = partitions.items()
                forward(shard_index, positions)
            else:
                futures = [
                    self.server.fanout.submit(forward, shard_index, positions)
                    for shard_index, positions in partitions.items()
                ]
                for future in futures:
                    future.result()
        with obs_span(trace, "serialize"):
            document = wire.answers_document(docs)
        return 200, document


class _BadRequest(Exception):
    """Framing/parse failure answered with a 400 before any forwarding."""


class _TooLarge(Exception):
    """Declared body beyond ``max_body``; answered 413 without reading it."""

    def __init__(self, length: int):
        super().__init__(str(length))
        self.length = length


class _Disconnect(Exception):
    """The client hung up mid-request; counted, never logged."""


class RouterServer(ThreadingHTTPServer):
    """The routing tier: a ring over shard endpoints plus aggregation state."""

    daemon_threads = True
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        shards: List[ShardEndpoint],
        *,
        pinned: Any = (),
        tracer: Any = None,
        quiet: bool = False,
        max_body: Optional[int] = DEFAULT_MAX_BODY,
    ):
        if not shards:
            raise ValueError("a router needs at least one shard endpoint")
        super().__init__(address, _RouterHandler)
        self.shards = {shard.index: shard for shard in shards}
        self.ring = HashRing(self.shards)
        self.pinned = frozenset(str(name) for name in pinned)
        self.tracer = tracer
        self.quiet = quiet
        self.max_body = max_body
        self.fanout = ThreadPoolExecutor(
            max_workers=max(8, 4 * len(shards)), thread_name_prefix="repro-router"
        )
        self._stats_lock = threading.Lock()
        self._counters = {
            "requests": 0, "forwarded": 0, "shard_errors": 0, "disconnects": 0,
        }

    # -- routing -------------------------------------------------------------
    def owner(self, dataset: str, kind: str) -> int:
        """The shard index owning ``(dataset, kind)`` under the ring."""
        return self.ring.owner(route_key(dataset, kind, pinned=self.pinned))

    # -- counters ------------------------------------------------------------
    def count(self, key: str) -> None:
        with self._stats_lock:
            self._counters[key] += 1

    def counters(self) -> Dict[str, int]:
        with self._stats_lock:
            return dict(self._counters)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- aggregation ---------------------------------------------------------
    def _poll_shards(self, path: str) -> Dict[int, Any]:
        """``GET path`` from every shard; unreachable shards are absent."""
        results: Dict[int, Any] = {}

        def poll(shard: ShardEndpoint) -> None:
            try:
                status, document = shard.request_json("GET", path)
                if status == 200:
                    results[shard.index] = document
            except ShardUnavailable:
                self.count("shard_errors")

        futures = [self.fanout.submit(poll, shard) for shard in self.shards.values()]
        for future in futures:
            future.result()
        return results

    def health_document(self) -> Tuple[int, Dict[str, Any]]:
        health = self._poll_shards("/health")
        datasets = sorted({
            name for document in health.values()
            for name in document.get("datasets", [])
        })
        healthy = len(health)
        return 200, {
            "api": wire.API_VERSION,
            "status": "ok" if healthy == len(self.shards) else "degraded",
            "datasets": datasets,
            "shards": {
                "total": len(self.shards),
                "healthy": healthy,
                "unreachable": sorted(set(self.shards) - set(health)),
            },
        }

    def stats_document(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /datasets`` in the single-process shape, tier-assembled.

        Pinned datasets report from their ring-owner shard (the only one
        whose private ledger moves); group members report from any live
        shard — their budget is the coordinator's, identical everywhere.
        Cache counters and spend totals are summed; per-shard details are
        new information under ``cluster``.
        """
        stats = self._poll_shards("/datasets")
        if not stats:
            return 503, wire.error_document(
                "shard_unavailable", "no shard is reachable", detail={"shard": None}
            )
        any_doc = next(iter(stats.values()))
        datasets: List[Dict[str, Any]] = []
        for entry in any_doc.get("datasets", []):
            name = entry.get("name", "")
            if name in self.pinned:
                owner = self.owner(name, "")
                for candidate in stats.get(owner, any_doc).get("datasets", []):
                    if candidate.get("name") == name:
                        entry = candidate
                        break
            datasets.append(entry)
        document: Dict[str, Any] = {
            "api": wire.API_VERSION,
            "status": "ok",
            "datasets": datasets,
            "groups": any_doc.get("groups", {}),
            "cache": _sum_counters([
                doc.get("cache", {}) for doc in stats.values()
            ]),
            "workers": sum(doc.get("workers") or 0 for doc in stats.values()),
            "seed": any_doc.get("seed"),
            "spend": _sum_counters([
                doc.get("spend", {}) for doc in stats.values()
            ]),
            "frontend": self.frontend_stats(),
            "cluster": {
                "shards": [
                    {
                        "shard": index,
                        "url": self.shards[index].url,
                        "healthy": index in stats,
                        "cache": stats[index].get("cache") if index in stats else None,
                        "workers": stats[index].get("workers") if index in stats else None,
                    }
                    for index in sorted(self.shards)
                ],
                "pinned": sorted(self.pinned),
            },
        }
        return 200, document

    def proxy_first_live(self, method: str, path: str) -> Tuple[int, Dict[str, Any]]:
        """Forward a read to the first reachable shard (identical everywhere)."""
        last_error = "no shards configured"
        for index in sorted(self.shards):
            try:
                return self.shards[index].request_json(method, path)
            except ShardUnavailable as exc:
                self.count("shard_errors")
                last_error = str(exc)
        return 503, wire.error_document(
            "shard_unavailable",
            f"no shard is reachable: {last_error}",
            detail={"shard": None},
        )

    def frontend_stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "frontend": "router",
            "shards": len(self.shards),
            "max_body": self.max_body,
        }
        stats.update(self.counters())
        return stats

    def metrics_text(self) -> str:
        """Prometheus text: router counters plus per-shard liveness and cache."""
        stats = self._poll_shards("/datasets")
        counters = self.counters()
        lines = [
            "# HELP repro_router_requests_total Requests accepted by the router.",
            "# TYPE repro_router_requests_total counter",
            f"repro_router_requests_total {counters['requests']}",
            "# HELP repro_router_forwarded_total Requests forwarded to a shard.",
            "# TYPE repro_router_forwarded_total counter",
            f"repro_router_forwarded_total {counters['forwarded']}",
            "# HELP repro_router_shard_errors_total Forwards that found a shard unreachable.",
            "# TYPE repro_router_shard_errors_total counter",
            f"repro_router_shard_errors_total {counters['shard_errors']}",
            "# HELP repro_router_shard_up Shard reachability (1 = answering).",
            "# TYPE repro_router_shard_up gauge",
        ]
        for index in sorted(self.shards):
            lines.append(
                f'repro_router_shard_up{{shard="{index}"}} {1 if index in stats else 0}'
            )
        cache = _sum_counters([doc.get("cache", {}) for doc in stats.values()])
        lines += [
            "# HELP repro_cache_hits_total Answer-cache hits, summed over shards.",
            "# TYPE repro_cache_hits_total counter",
            f"repro_cache_hits_total {cache.get('hits', 0)}",
            "# HELP repro_cache_misses_total Answer-cache misses, summed over shards.",
            "# TYPE repro_cache_misses_total counter",
            f"repro_cache_misses_total {cache.get('misses', 0)}",
        ]
        return "\n".join(lines) + "\n"

    def handle_error(self, request, client_address) -> None:
        """Socket-level failures are counters, never tracebacks (see http.py)."""
        exc = sys.exc_info()[1]
        if isinstance(exc, _TRANSPORT_ERRORS):
            self.count("disconnects")
            return
        print(
            f"router error handling request from {client_address}: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
            flush=True,
        )

    def server_close(self) -> None:
        super().server_close()
        self.fanout.shutdown(wait=False)
        for shard in self.shards.values():
            shard.close()


def make_router(
    shards: List[ShardEndpoint],
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> RouterServer:
    """Bind a :class:`RouterServer` (``port=0`` picks an ephemeral port)."""
    return RouterServer((host, port), shards, **kwargs)


def serve_router(server: RouterServer) -> threading.Thread:
    """Run ``server`` on a daemon thread; returns the (started) thread."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def load_router_plan(path: Any) -> Dict[str, Any]:
    """Decode the router plan JSON ``repro compose`` writes.

    Shape: ``{"host": ..., "port": ..., "shards": [{"index": 0, "host": ...,
    "port": ...}, ...], "pinned": [...], "trace_ring": 256, "quiet": false}``.
    """
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or not isinstance(document.get("shards"), list):
        raise ValueError(f"router plan {path} must be an object with a 'shards' list")
    return document


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.cluster.router --plan router.json`` (compose-run)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-cluster-router",
        description="consistent-hashing front door for a repro shard fleet",
    )
    parser.add_argument("--plan", required=True, help="router plan JSON from repro compose")
    options = parser.parse_args(argv)
    plan = load_router_plan(options.plan)
    shards = [
        ShardEndpoint(entry["index"], entry["host"], int(entry["port"]))
        for entry in plan["shards"]
    ]
    tracer = None
    ring_size = int(plan.get("trace_ring", 256))
    if ring_size > 0:
        from repro.obs import TraceRecorder

        tracer = TraceRecorder(ring_size)
    server = make_router(
        shards,
        host=str(plan.get("host", "127.0.0.1")),
        port=int(plan.get("port", 0)),
        pinned=plan.get("pinned", ()),
        tracer=tracer,
        quiet=bool(plan.get("quiet", True)),
    )
    host, port = server.server_address[:2]
    print(
        json.dumps(
            {"event": "listening", "component": "router", "host": host, "port": port}
        ),
        flush=True,
    )
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by repro compose
    raise SystemExit(main())
