"""Line-delimited-JSON RPC framing and client for the budget coordinator.

One request per line, one response per line, UTF-8 JSON objects::

    -> {"id": 7, "op": "reserve", "owner": "group:pilot", "amount": 0.5}
    <- {"id": 7, "ok": true, "token": "r12", "amount": 0.5}

Failures come back as ``{"id": 7, "ok": false, "error": "<code>",
"message": "..."}``.  The client maps the ``budget_exceeded`` code onto
:class:`~repro.exceptions.BudgetExceededError` so a remote refusal is
indistinguishable from a local one, and every other protocol error onto
:class:`~repro.exceptions.DomainError`.  Transport failures raise
:class:`~repro.exceptions.CoordinatorUnavailableError`.

This module is pure stdlib and imports nothing from ``repro.service`` —
the service layer lazily imports the client, never the reverse.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, Optional

from repro.exceptions import (
    BudgetExceededError,
    CoordinatorUnavailableError,
    DomainError,
)

__all__ = ["CoordinatorClient", "encode_line", "decode_line"]

#: Ops safe to replay if the connection dies after the request was sent:
#: they either read state or set it to an absolute value.  ``reserve`` /
#: ``commit`` / ``cancel`` are *not* here — replaying one after a lost
#: response could apply it twice, so those surface the ambiguity as
#: ``CoordinatorUnavailableError`` instead.
_IDEMPOTENT_OPS = frozenset(
    {"ping", "peek", "snapshot", "stats", "create", "analyst_remaining", "rotate"}
)

_TRANSPORT_ERRORS = (OSError, EOFError)


def encode_line(document: Dict[str, Any]) -> bytes:
    """Serialise one protocol message to its wire line."""
    return json.dumps(document, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; raises ``ValueError`` on malformed input."""
    document = json.loads(line.decode("utf-8"))
    if not isinstance(document, dict):
        raise ValueError("protocol messages must be JSON objects")
    return document


class CoordinatorClient:
    """Thread-safe client for one coordinator endpoint.

    A single keep-alive socket is shared under a lock — the coordinator
    round-trip is a handful of microseconds on loopback, and the shard
    executor already serialises admission under its coalesce lock, so one
    connection per shard process is the honest concurrency level.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 5.0) -> None:
        self._address = (host, int(port))
        self._timeout = float(timeout)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0
        self._sent = False

    # -- connection management ---------------------------------------------
    @property
    def endpoint(self) -> str:
        return f"{self._address[0]}:{self._address[1]}"

    def _connect(self) -> None:
        """Open the keep-alive socket.  Caller must hold ``self._lock``."""
        sock = socket.create_connection(self._address, timeout=self._timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _teardown(self) -> None:
        """Drop the socket, if any.  Caller must hold ``self._lock``."""
        for closable in (self._reader, self._sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass
        self._sock = None
        self._reader = None

    def close(self) -> None:
        with self._lock:
            self._teardown()

    # -- calls --------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Perform one RPC, returning the response document on success."""
        with self._lock:
            self._next_id += 1
            request = {"id": self._next_id, "op": op, **fields}
            try:
                response = self._exchange(request)
            except _TRANSPORT_ERRORS:
                # One reconnect: a stale keep-alive socket (coordinator
                # restarted, idle timeout) is routine.  A failure *before*
                # the request line was fully sent cannot have been applied,
                # so any op may replay then; after a complete send only
                # idempotent ops may — replaying a reserve/commit whose
                # response was lost could apply it twice.
                self._teardown()
                if op not in _IDEMPOTENT_OPS and self._sent:
                    raise CoordinatorUnavailableError(
                        f"coordinator at {self.endpoint} dropped the "
                        f"connection mid-{op}; the op was not retried because "
                        "its effect may already have been applied"
                    ) from None
                try:
                    response = self._exchange(request)
                except _TRANSPORT_ERRORS as exc:
                    self._teardown()
                    raise CoordinatorUnavailableError(
                        f"coordinator at {self.endpoint} is unreachable: {exc}"
                    ) from None
        return self._unwrap(op, response)

    def _exchange(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One send/receive round-trip.  Caller must hold ``self._lock``."""
        self._sent = False
        if self._sock is None:
            self._connect()
        assert self._sock is not None and self._reader is not None
        self._sock.sendall(encode_line(request))
        self._sent = True
        line = self._reader.readline()
        if not line:
            raise EOFError("coordinator closed the connection")
        try:
            response = decode_line(line)
        except ValueError as exc:
            raise EOFError(f"malformed coordinator response: {exc}") from None
        if response.get("id") != request["id"]:
            raise EOFError(
                f"coordinator answered request {response.get('id')!r} "
                f"out of order (expected {request['id']})"
            )
        return response

    @staticmethod
    def _unwrap(op: str, response: Dict[str, Any]) -> Dict[str, Any]:
        if response.get("ok"):
            return response
        code = response.get("error", "protocol_error")
        message = response.get("message", f"coordinator rejected op {op!r}")
        if code == "budget_exceeded":
            raise BudgetExceededError(message)
        raise DomainError(f"coordinator refused {op!r} ({code}): {message}")

    # -- convenience wrappers ----------------------------------------------
    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))
