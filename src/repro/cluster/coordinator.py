"""The cluster budget coordinator: one process owning every joint ledger.

A joint budget group spans shards, so its reserve→commit protocol must be
atomic *cluster-wide*.  The coordinator achieves that the same way
:class:`~repro.service.registry.BudgetManager` does within one process —
by being the single owner of the ledger — and exposes exactly the
registry's group semantics (``peek`` / ``reserve`` / ``commit`` /
``cancel`` plus the introspection calls the admin and metrics surfaces
need) over the line-delimited-JSON RPC framing of
:mod:`repro.cluster.rpc`.  Shards talk to it through
:class:`~repro.service.registry.RemoteBudgetManager`; datasets with a
private (shard-local) budget never appear here at all.

Owner registration is idempotent: every shard boots with the same serving
config and issues ``create`` for each group it knows; the first call
creates the manager, later calls merely verify that capacity and analyst
caps agree (a mismatch means the shards are running different configs —
refused loudly rather than silently double-booked).

This module is the **only** place in ``repro.cluster`` allowed to
construct or mutate a ``BudgetManager`` — lint rule REP008 enforces that
the router/compose layer can reach a ledger exclusively through the RPC
client.
"""

from __future__ import annotations

import argparse
import json
import signal
import socketserver
import sys
import threading
from typing import Any, Dict, Optional, Tuple

from repro.cluster.rpc import decode_line, encode_line
from repro.exceptions import BudgetExceededError, ReproError
from repro.service.registry import BudgetManager, Reservation

__all__ = [
    "BudgetCoordinator",
    "CoordinatorServer",
    "make_coordinator_server",
    "main",
]


class BudgetCoordinator:
    """Dict-in/dict-out RPC core (transport-free, directly testable).

    One lock serialises every op: the coordinator *is* the cluster's
    admission point, and each op is a few dict operations on a
    :class:`BudgetManager`, so a single mutex is both correct and fast
    (the socket round-trip dominates by orders of magnitude).
    """

    def __init__(self) -> None:
        self._owners: Dict[str, BudgetManager] = {}
        self._analyst_caps: Dict[str, Dict[str, float]] = {}
        self._reservations: Dict[int, Tuple[str, Reservation]] = {}
        self._next_token = 0
        self._lock = threading.Lock()
        self._ops = {
            "ping": self._ping,
            "create": self._create,
            "peek": self._peek,
            "reserve": self.reserve,
            "commit": self._commit,
            "cancel": self._cancel,
            "snapshot": self._snapshot,
            "analyst_remaining": self._analyst_remaining,
            "rotate": self._rotate,
            "stats": self._stats,
        }

    # -- dispatch -----------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one protocol request; never raises."""
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict):
                raise ValueError("requests must be JSON objects")
            op = request.get("op")
            handler = self._ops.get(op)
            if handler is None:
                raise ValueError(f"unknown op {op!r} (known: {sorted(self._ops)})")
            with self._lock:
                response = handler(request)
        except BudgetExceededError as exc:
            response = {"ok": False, "error": "budget_exceeded", "message": str(exc)}
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            response = {"ok": False, "error": "domain", "message": str(exc)}
        response.setdefault("ok", True)
        response["id"] = request_id
        return response

    def _manager(self, request: Dict[str, Any]) -> Tuple[str, BudgetManager]:
        """Resolve ``request["owner"]``.  Caller must hold ``self._lock``."""
        owner = str(request.get("owner") or "")
        manager = self._owners.get(owner)
        if manager is None:
            raise ValueError(
                f"unknown budget owner {owner!r} "
                f"(registered: {sorted(self._owners) or 'none'})"
            )
        return owner, manager

    # -- ops (caller must hold self._lock; handle() takes it) ---------------
    def _ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Liveness probe.  Caller must hold ``self._lock``."""
        return {"pong": True, "owners": len(self._owners)}

    def _create(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Idempotently register an owner.  Caller must hold ``self._lock``.

        The first shard to boot creates the ledger; every later shard's
        ``create`` must agree on capacity and analyst caps bit-for-bit —
        the only way they differ is a config skew that would corrupt the
        joint accounting.
        """
        owner = str(request.get("owner") or "")
        if not owner:
            raise ValueError("create needs a non-empty owner")
        capacity = float(request["capacity"])
        caps_field = request.get("analyst_budgets") or {}
        analyst_caps = {str(name): float(cap) for name, cap in caps_field.items()}
        existing = self._owners.get(owner)
        if existing is None:
            self._owners[owner] = BudgetManager(
                capacity, analyst_budgets=analyst_caps or None
            )
            self._analyst_caps[owner] = analyst_caps
            return {"created": True, "capacity": capacity}
        if existing.capacity != capacity or self._analyst_caps[owner] != analyst_caps:
            raise ValueError(
                f"owner {owner!r} already registered with capacity "
                f"{existing.capacity!r} and analyst caps "
                f"{self._analyst_caps[owner]!r}; refusing a conflicting create "
                f"(capacity {capacity!r}, caps {analyst_caps!r}) — are the "
                "shards running the same serving config?"
            )
        return {"created": False, "capacity": capacity}

    def _peek(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Zero-side-effect admission probe.  Caller must hold ``self._lock``."""
        _, manager = self._manager(request)
        refusal = manager.peek(
            float(request["amount"]), analyst=_analyst(request)
        )
        return {"refusal": refusal}

    def reserve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Admit or refuse a claim.  Caller must hold ``self._lock``.

        The returned token stands in for the :class:`Reservation` on the
        wire; the coordinator keeps the real object until ``commit`` or
        ``cancel`` settles it (ownership transfers to the caller, who must
        send exactly one of the two back).
        """
        owner, manager = self._manager(request)
        reservation = manager.reserve(
            float(request["amount"]), analyst=_analyst(request)
        )
        self._next_token += 1
        token = self._next_token
        self._reservations[token] = (owner, reservation)
        return {"token": token, "amount": reservation.amount}

    def _settle(self, request: Dict[str, Any]) -> Tuple[str, BudgetManager, Reservation]:
        """Pop the reservation behind a token.  Caller must hold ``self._lock``."""
        token = request.get("token")
        entry = self._reservations.pop(token, None)
        if entry is None:
            raise ValueError(
                f"unknown reservation token {token!r} (already settled, or "
                "issued by a previous coordinator incarnation)"
            )
        owner, reservation = entry
        return owner, self._owners[owner], reservation

    def _commit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Settle a reservation with its measured spend.  Caller must hold ``self._lock``."""
        owner, manager, reservation = self._settle(request)
        charged = manager.commit(
            reservation, float(request["actual"]), label=str(request.get("label", ""))
        )
        return {"charged": charged, "remaining": manager.remaining}

    def _cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Release a reservation unspent.  Caller must hold ``self._lock``."""
        owner, manager, reservation = self._settle(request)
        manager.cancel(reservation)
        return {"remaining": manager.remaining}

    def _snapshot(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Budget state for one owner.  Caller must hold ``self._lock``."""
        _, manager = self._manager(request)
        return {"budget": manager.to_json()}

    def _analyst_remaining(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Per-analyst headroom for one owner.  Caller must hold ``self._lock``."""
        _, manager = self._manager(request)
        analyst = _analyst(request)
        if analyst is None:
            raise ValueError("analyst_remaining needs an analyst")
        return {"remaining": manager.analyst_remaining(analyst)}

    def _rotate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Replace an owner's analyst caps.  Caller must hold ``self._lock``."""
        owner, manager = self._manager(request)
        caps_field = request.get("analyst_budgets") or {}
        analyst_caps = {str(name): float(cap) for name, cap in caps_field.items()}
        manager.rotate_analyst_budgets(analyst_caps or None)
        self._analyst_caps[owner] = analyst_caps
        return {"analysts": sorted(analyst_caps)}

    def _stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Every owner's ledger snapshot.  Caller must hold ``self._lock``."""
        return {
            "owners": {name: manager.to_json() for name, manager in self._owners.items()},
            "outstanding_reservations": len(self._reservations),
        }


def _analyst(request: Dict[str, Any]) -> Optional[str]:
    analyst = request.get("analyst")
    return None if analyst is None else str(analyst)


# ---------------------------------------------------------------------------
# TCP server
# ---------------------------------------------------------------------------
class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines until EOF, answer each in turn."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        coordinator = self.server.coordinator  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline()
            except OSError:
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                request = decode_line(line)
            except ValueError as exc:
                response = {
                    "id": None,
                    "ok": False,
                    "error": "bad_request",
                    "message": f"malformed request line: {exc}",
                }
            else:
                response = coordinator.handle(request)
            try:
                self.wfile.write(encode_line(response))
                self.wfile.flush()
            except OSError:
                return


class CoordinatorServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], coordinator: BudgetCoordinator):
        super().__init__(address, _Handler)
        self.coordinator = coordinator


def make_coordinator_server(
    host: str = "127.0.0.1", port: int = 0
) -> CoordinatorServer:
    """Bind a coordinator server (``port=0`` → ephemeral); caller serves it."""
    return CoordinatorServer((host, port), BudgetCoordinator())


def serve_in_thread(server: CoordinatorServer) -> threading.Thread:
    """Run ``server`` on a daemon thread (tests and in-process clusters)."""
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-coordinator",
        daemon=True,
    )
    thread.start()
    return thread


def main(argv: Optional[list] = None) -> int:
    """``python -m repro.cluster.coordinator`` — run a coordinator process."""
    parser = argparse.ArgumentParser(
        prog="repro-coordinator",
        description="Budget coordinator for a repro.cluster deployment.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the readiness line"
    )
    args = parser.parse_args(argv)
    server = make_coordinator_server(args.host, args.port)
    host, port = server.server_address[:2]
    if not args.quiet:
        print(
            json.dumps(
                {"event": "listening", "component": "coordinator", "host": host, "port": port}
            ),
            flush=True,
        )

    def _terminate(signum, frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
