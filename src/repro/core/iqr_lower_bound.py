"""``EstimateIQRLowerBound`` — Algorithm 7, Theorem 4.3.

The statistical estimators discretize R with a bucket size ``b``.  Prior work
simply set ``b = sigma_min`` using assumption A2; to remove that assumption
the paper privately finds a *lower bound* on the IQR, which suffices because
``IQR <= 4 sigma``.  The idea: pair up the sample, look at the absolute gaps
``Y_i = |X - X'|``, and locate (very roughly — a constant-factor approximation
is enough) the ``3n'/16``-th smallest gap by running two Sparse Vector
instances, one sweeping the scale upward from 1 and one sweeping downward.

Guarantee (Theorem 4.3): with probability ``1 - beta`` the returned value lies
in ``[phi(1/16) / 4, IQR]``, where ``phi(1/16)`` is the width of the narrowest
interval carrying 1/16 probability mass — strictly positive for every
continuous distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.exceptions import InsufficientDataError
from repro.mechanisms.sparse_vector import sparse_vector

__all__ = ["IQRLowerBoundResult", "estimate_iqr_lower_bound"]

#: Safety cap for the downward scale sweep.  Scale 2**(-1100) is below the
#: smallest positive double, so the count of gaps below it can only include
#: exact ties; continuous data therefore always stops well before the cap.
_DOWNWARD_MAX_QUERIES = 1200
_UPWARD_MAX_QUERIES = 4096


@dataclass(frozen=True)
class IQRLowerBoundResult:
    """Private IQR lower bound plus diagnostics.

    Attributes
    ----------
    value:
        The privatized lower bound on the IQR (used as a bucket size).
    branch:
        ``"up"`` when the upward SVT sweep produced the answer (gaps are
        mostly larger than 1), ``"down"`` otherwise.
    up_index, down_index:
        Stopping indices of the two SVT instances (``None`` if not run /
        not used).
    pair_count:
        Number of gap values the estimate was computed from.
    """

    value: float
    branch: str
    up_index: Optional[int]
    down_index: Optional[int]
    pair_count: int


def _pairwise_gaps(data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Randomly pair up the data and return the absolute within-pair gaps."""
    permuted = rng.permutation(data)
    n_pairs = permuted.size // 2
    left = permuted[: 2 * n_pairs : 2]
    right = permuted[1 : 2 * n_pairs : 2]
    return np.abs(left - right)


def _count_queries(sorted_gaps: np.ndarray, scales: Iterator[float], sign: float) -> Iterator:
    """Yield queries ``sign * Count(G, scale)`` for each scale in ``scales``."""

    def make_query(limit: float):
        def query() -> float:
            return sign * float(np.searchsorted(sorted_gaps, limit, side="right"))

        return query

    for scale in scales:
        yield make_query(scale)


def _upward_scales() -> Iterator[float]:
    scale = 1.0
    while True:
        yield scale
        scale *= 2.0


def _downward_scales() -> Iterator[float]:
    scale = 1.0
    while True:
        yield scale
        scale /= 2.0


def estimate_iqr_lower_bound(
    values: Sequence[float],
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "iqr_lower_bound",
) -> IQRLowerBoundResult:
    """Privately compute a lower bound on the IQR of the sampled distribution.

    Parameters
    ----------
    values:
        An i.i.d. sample from the distribution P.
    epsilon, beta:
        Privacy budget (split evenly across two SVT instances) and failure
        probability.

    Returns
    -------
    IQRLowerBoundResult
        With probability at least ``1 - beta`` (for ``n`` large enough as in
        Theorem 4.3) the value lies in ``[phi(1/16) / 4, IQR]``.
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size < 4:
        raise InsufficientDataError(
            f"estimate_iqr_lower_bound needs at least 4 samples, got {data.size}"
        )
    generator = resolve_rng(rng)

    gaps = _pairwise_gaps(data, generator)
    sorted_gaps = np.sort(gaps)
    n_pairs = sorted_gaps.size
    threshold = 3.0 * n_pairs / 16.0

    # Upward sweep: find the first power of two covering >= 3n'/16 of the gaps.
    up_result = sparse_vector(
        threshold,
        epsilon / 2.0,
        _count_queries(sorted_gaps, _upward_scales(), sign=1.0),
        generator,
        max_queries=_UPWARD_MAX_QUERIES,
        ledger=ledger,
        label=f"{label}.svt_up",
    )

    # Downward sweep: find the first negative power of two covering < 3n'/16.
    down_result = sparse_vector(
        -threshold,
        epsilon / 2.0,
        _count_queries(sorted_gaps, _downward_scales(), sign=-1.0),
        generator,
        max_queries=_DOWNWARD_MAX_QUERIES,
        ledger=ledger,
        label=f"{label}.svt_down",
    )

    if up_result.index > 1:
        value = 2.0 ** (up_result.index - 2)
        branch = "up"
    else:
        value = 2.0 ** (-down_result.index)
        branch = "down"

    return IQRLowerBoundResult(
        value=float(value),
        branch=branch,
        up_index=up_result.index,
        down_index=down_result.index,
        pair_count=int(n_pairs),
    )
