"""Universal private estimation of arbitrary quantiles.

Algorithm 10 estimates the IQR by releasing the two quartiles; nothing in it
is specific to ranks ``n/4`` and ``3n/4``.  This module generalises it to any
set of quantile levels: the private IQR lower bound fixes a bucket size once,
and each requested quantile is released with ``InfiniteDomainQuantile`` under
an equal share of the remaining budget.  The per-quantile rank error follows
Theorem 3.9 with ``epsilon`` replaced by its share, and the discretization
error is at most one bucket.

This is the estimator a data platform would expose for DP ``PERCENTILE``-style
queries (p50/p95/p99 dashboards) without any domain bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.core.iqr_lower_bound import IQRLowerBoundResult, estimate_iqr_lower_bound
from repro.dataview import DatasetView
from repro.empirical.quantile import EmpiricalQuantileResult, estimate_empirical_quantile
from repro.exceptions import DomainError, InsufficientDataError

__all__ = ["QuantilesResult", "estimate_quantiles"]

#: Fraction of the budget reserved for the bucket-size search, mirroring the
#: eps/3 split of Algorithm 10.
_BUCKET_BUDGET_FRACTION = 1.0 / 3.0


@dataclass(frozen=True)
class QuantilesResult:
    """Universal private estimates for a set of quantile levels.

    Attributes
    ----------
    levels:
        The requested quantile levels, in the order given by the caller.
    values:
        The private estimates, aligned with ``levels``.
    per_quantile:
        The full :class:`EmpiricalQuantileResult` for each level (diagnostics).
    iqr_lower_bound:
        Result of the private bucket-size search.
    bucket_size:
        Discretization bucket used for every quantile release.
    epsilon_per_quantile:
        Budget spent on each individual quantile release.
    """

    levels: Tuple[float, ...]
    values: Tuple[float, ...]
    per_quantile: Tuple[EmpiricalQuantileResult, ...]
    iqr_lower_bound: IQRLowerBoundResult
    bucket_size: float
    epsilon_per_quantile: float

    def as_dict(self) -> dict:
        """Mapping from quantile level to private estimate."""
        return dict(zip(self.levels, self.values))


def estimate_quantiles(
    values: Sequence[float],
    levels: Sequence[float],
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    bucket_size: Optional[float] = None,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "quantiles",
) -> QuantilesResult:
    """Universal ε-DP estimator for multiple quantiles of an unknown distribution.

    Parameters
    ----------
    values:
        An i.i.d. sample from an arbitrary continuous distribution over R.
    levels:
        Quantile levels in (0, 1), e.g. ``[0.5, 0.95, 0.99]``.  Duplicates are
        allowed and each level is charged separately.
    epsilon, beta:
        Total privacy budget and failure probability.  One third of the budget
        finds the bucket size (skipped when ``bucket_size`` is given); the rest
        is split evenly across the quantile releases.
    bucket_size:
        Optional explicit discretization bucket (simulating a known scale).
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size < 8:
        raise InsufficientDataError(
            f"estimate_quantiles needs at least 8 samples, got {data.size}"
        )
    levels = tuple(float(q) for q in levels)
    if not levels:
        raise DomainError("at least one quantile level is required")
    for q in levels:
        if not 0.0 < q < 1.0:
            raise DomainError(f"quantile levels must lie strictly in (0, 1), got {q}")
    generator = resolve_rng(rng)
    n = data.size

    # Thread a DatasetView through to the per-level releases (sketch reuse);
    # the lower-bound search keeps the raw array (per-query permutation).
    view = values if isinstance(values, DatasetView) else None

    if bucket_size is None:
        iqr_lb = estimate_iqr_lower_bound(
            data,
            epsilon * _BUCKET_BUDGET_FRACTION,
            beta / (len(levels) + 1),
            generator,
            ledger=ledger,
            label=f"{label}.iqr_lower_bound",
        )
        bucket = iqr_lb.value / n
        remaining = epsilon * (1.0 - _BUCKET_BUDGET_FRACTION)
    else:
        iqr_lb = IQRLowerBoundResult(
            value=float(bucket_size) * n,
            branch="given",
            up_index=None,
            down_index=None,
            pair_count=0,
        )
        bucket = float(bucket_size)
        remaining = epsilon

    epsilon_each = remaining / len(levels)
    beta_each = beta / (len(levels) + 1)

    results = []
    for index, q in enumerate(levels):
        tau = int(min(max(round(q * n), 1), n))
        results.append(
            estimate_empirical_quantile(
                view if view is not None else data,
                tau,
                epsilon_each,
                beta_each,
                generator,
                bucket_size=bucket,
                ledger=ledger,
                label=f"{label}.q{index}",
            )
        )

    return QuantilesResult(
        levels=levels,
        values=tuple(r.value for r in results),
        per_quantile=tuple(results),
        iqr_lower_bound=iqr_lb,
        bucket_size=bucket,
        epsilon_per_quantile=epsilon_each,
    )
