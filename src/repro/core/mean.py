"""``EstimateMean`` — Algorithm 8, Theorems 4.5-4.9.

The universal mean estimator composes three ingredients:

1. **Bucket size** — a private lower bound on the IQR (Algorithm 7) is used to
   discretize R, removing assumption A2 without knowing anything about P.
2. **Aggressive clipping range** — the private range is computed on a random
   *sub-sample* of ``m = eps * n`` points.  By privacy amplification
   (Theorem 2.4) the inner mechanism may spend ``eps' = log((e^eps - 1)/eps + 1)``
   on the sub-sample while charging only ~``eps`` against the full data, and
   because the sub-sample is i.i.d. its range is a much tighter clipping
   interval than the full data's range, which is what brings the privacy error
   down to ~``1/(eps n)`` instead of ~``1/n``.
3. **Clipped mean release** — the full dataset is clipped into that range and
   released with Laplace noise ``Lap(8 |R̃| / (eps n))``.

Error (Theorem 4.5): the best bias/variance trade-off over all truncation
levels ``xi >= 10 * gamma(eps n) + 2 sigma`` of

``|bias outside [mu ± xi]| + (xi / (eps n)) * loglog(gamma(eps n)/phi(1/16))``

plus the usual ``sigma / sqrt(n)`` sampling error.  For Gaussians this gives
the sample complexity of Theorem 1.7 with **no** a-priori range for the mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.core.iqr_lower_bound import IQRLowerBoundResult, estimate_iqr_lower_bound
from repro.empirical.range_finder import RangeResult, estimate_range
from repro.exceptions import InsufficientDataError
from repro.mechanisms.clipped_mean import clipped_mean, count_outside
from repro.mechanisms.laplace import laplace_noise
from repro.mechanisms.subsample import amplified_epsilon, inner_epsilon_for_target, subsample

__all__ = ["MeanResult", "estimate_mean"]


@dataclass(frozen=True)
class MeanResult:
    """Universal private mean estimate plus analysis-only diagnostics.

    Attributes
    ----------
    mean:
        The ε-DP estimate of the statistical mean ``mu_P``.
    iqr_lower_bound:
        Result of the private bucket-size search (Algorithm 7).
    range_used:
        Privatized clipping range found on the sub-sample.
    noise_scale:
        Scale of the final Laplace noise, ``8 |R̃| / (eps n)``.
    subsample_size:
        Size ``m`` of the sub-sample used for the range search.
    inner_epsilon:
        The amplified budget ``eps'`` the range search spent on the sub-sample.
    clipped_count:
        *Non-private diagnostic*: number of points of the full dataset that
        were clipped.
    sample_mean:
        *Non-private diagnostic*: the exact sample mean, for error analysis.
    """

    mean: float
    iqr_lower_bound: IQRLowerBoundResult
    range_used: RangeResult
    noise_scale: float
    subsample_size: int
    inner_epsilon: float
    clipped_count: int
    sample_mean: float


def estimate_mean(
    values: Sequence[float],
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    subsample_size: Optional[int] = None,
    bucket_size: Optional[float] = None,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "mean",
) -> MeanResult:
    """Universal ε-DP estimator of the statistical mean (Algorithm 8).

    Parameters
    ----------
    values:
        An i.i.d. sample ``D ~ P^n`` from an arbitrary unknown continuous
        distribution over R.
    epsilon, beta:
        Privacy budget and failure probability.
    subsample_size:
        Size ``m`` of the sub-sample used to find the clipping range.  The
        default is the paper's choice ``m = eps * n``; the E12 ablation
        benchmark overrides it.
    bucket_size:
        Override for the discretization bucket.  By default the private IQR
        lower bound is used (which is what makes the estimator universal);
        passing an explicit value simulates the "A2 is given" setting of prior
        work and skips Algorithm 7 (its budget is then left unspent).
    ledger:
        Optional ledger recording every sub-mechanism's spend.

    Returns
    -------
    MeanResult
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size < 8:
        raise InsufficientDataError(f"estimate_mean needs at least 8 samples, got {data.size}")
    generator = resolve_rng(rng)
    n = data.size

    # Step 1: private bucket size (eps / 8 of the budget), unless given.
    if bucket_size is None:
        iqr_lb = estimate_iqr_lower_bound(
            data,
            epsilon / 8.0,
            beta / 9.0,
            generator,
            ledger=ledger,
            label=f"{label}.iqr_lower_bound",
        )
        bucket = iqr_lb.value
    else:
        iqr_lb = IQRLowerBoundResult(
            value=float(bucket_size), branch="given", up_index=None, down_index=None, pair_count=0
        )
        bucket = float(bucket_size)

    # Step 2: clipping range on a sub-sample of m = eps * n points.
    if subsample_size is None:
        m = int(round(epsilon * n))
    else:
        m = int(subsample_size)
    m = min(max(m, 8), n)
    sample = subsample(data, m, generator)
    eta = m / n
    inner_eps = inner_epsilon_for_target(epsilon, eta)
    range_inner_eps = 3.0 * inner_eps / 4.0
    range_charged_eps = amplified_epsilon(range_inner_eps, eta)

    range_result = estimate_range(
        sample,
        range_inner_eps,
        beta / 9.0,
        generator,
        bucket_size=bucket,
        ledger=None,  # charged below with the amplified value
        label=f"{label}.range",
    )
    if ledger is not None:
        ledger.charge(
            f"{label}.range", range_inner_eps, charged_epsilon=range_charged_eps
        )

    # Step 3: clipped mean of the *full* dataset over the sub-sample's range.
    exact_clipped = clipped_mean(data, range_result.low, range_result.high)
    noise_scale = 8.0 * range_result.width / (epsilon * n)
    if ledger is not None:
        ledger.charge(f"{label}.noise", epsilon / 8.0)
    estimate = exact_clipped + float(laplace_noise(noise_scale, generator))

    return MeanResult(
        mean=float(estimate),
        iqr_lower_bound=iqr_lb,
        range_used=range_result,
        noise_scale=noise_scale,
        subsample_size=m,
        inner_epsilon=inner_eps,
        clipped_count=count_outside(data, range_result.low, range_result.high),
        sample_mean=float(np.mean(data)),
    )
