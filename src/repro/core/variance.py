"""``EstimateVariance`` — Algorithm 9, Theorems 5.2-5.5.

Variance estimation reduces to mean estimation through random pairing: for a
pair ``(X, X')`` drawn from P, the statistic ``Z = (X - X')^2`` satisfies
``E[Z] = 2 sigma^2``, so estimating ``E[Z]`` over the derived sample
``H = {Z_1, ..., Z_{n/2}}`` and halving gives the variance.  Two
simplifications relative to the mean estimator make the algorithm cheaper:

* ``Z`` is non-negative and its range is anchored at 0, so only a private
  *radius* of the sub-sample of ``H`` is needed, not a full range (this is
  exactly why the sample complexity has a ``log log sigma`` term where the
  mean estimator pays ``log |mu|``);
* the bucket size is the square of the private IQR lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.core.iqr_lower_bound import IQRLowerBoundResult, estimate_iqr_lower_bound
from repro.empirical.radius import RadiusResult, estimate_radius
from repro.exceptions import InsufficientDataError
from repro.mechanisms.clipped_mean import clipped_mean, count_outside
from repro.mechanisms.laplace import laplace_noise
from repro.mechanisms.subsample import amplified_epsilon, inner_epsilon_for_target, subsample

__all__ = ["VarianceResult", "estimate_variance"]


@dataclass(frozen=True)
class VarianceResult:
    """Universal private variance estimate plus analysis-only diagnostics.

    Attributes
    ----------
    variance:
        The ε-DP estimate of ``sigma_P^2``.
    iqr_lower_bound:
        Result of the private bucket-size search.
    radius_used:
        Privatized radius of the paired statistic ``Z = (X - X')^2`` found on
        the sub-sample; the clipping interval is ``[0, radius]``.
    noise_scale:
        Scale of the final Laplace noise, ``8 * radius / (eps n)``.
    subsample_size:
        Size of the sub-sample of ``H`` used for the radius search.
    pair_count:
        Number of pairs, ``n // 2``.
    inner_epsilon:
        Amplified budget spent on the sub-sample.
    clipped_count:
        *Non-private diagnostic*: number of ``Z`` values clipped.
    sample_variance:
        *Non-private diagnostic*: the exact (unclipped) sample variance.
    """

    variance: float
    iqr_lower_bound: IQRLowerBoundResult
    radius_used: RadiusResult
    noise_scale: float
    subsample_size: int
    pair_count: int
    inner_epsilon: float
    clipped_count: int
    sample_variance: float


def estimate_variance(
    values: Sequence[float],
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    subsample_size: Optional[int] = None,
    bucket_size: Optional[float] = None,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "variance",
) -> VarianceResult:
    """Universal ε-DP estimator of the statistical variance (Algorithm 9).

    Parameters
    ----------
    values:
        An i.i.d. sample ``D ~ P^n``.
    epsilon, beta:
        Privacy budget and failure probability.
    subsample_size:
        Size of the sub-sample of the paired statistics used for the radius
        search; defaults to the paper's ``eps * n'`` with ``n' = n / 2``.
    bucket_size:
        Override for the discretization bucket of the paired statistic
        (defaults to the square of the private IQR lower bound).
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size < 16:
        raise InsufficientDataError(
            f"estimate_variance needs at least 16 samples, got {data.size}"
        )
    generator = resolve_rng(rng)
    n = data.size

    # Step 1: private bucket size (eps / 8), squared because Z = (X - X')^2.
    if bucket_size is None:
        iqr_lb = estimate_iqr_lower_bound(
            data,
            epsilon / 8.0,
            beta / 7.0,
            generator,
            ledger=ledger,
            label=f"{label}.iqr_lower_bound",
        )
        bucket = iqr_lb.value**2
    else:
        iqr_lb = IQRLowerBoundResult(
            value=float(np.sqrt(bucket_size)),
            branch="given",
            up_index=None,
            down_index=None,
            pair_count=0,
        )
        bucket = float(bucket_size)

    # Step 2: pair up the data and form H = {(X - X')^2}.
    permuted = generator.permutation(data)
    n_pairs = permuted.size // 2
    paired = (permuted[: 2 * n_pairs : 2] - permuted[1 : 2 * n_pairs : 2]) ** 2

    # Step 3: private radius of a sub-sample of H (range is anchored at 0).
    if subsample_size is None:
        m = int(round(epsilon * n_pairs))
    else:
        m = int(subsample_size)
    m = min(max(m, 4), n_pairs)
    sample = subsample(paired, m, generator)
    eta = m / n_pairs
    inner_eps = inner_epsilon_for_target(epsilon, eta)
    radius_inner_eps = 3.0 * inner_eps / 4.0
    radius_charged_eps = amplified_epsilon(radius_inner_eps, eta)

    radius_result = estimate_radius(
        sample,
        radius_inner_eps,
        beta / 7.0,
        generator,
        bucket_size=bucket,
        ledger=None,  # charged below with the amplified value
        label=f"{label}.radius",
    )
    if ledger is not None:
        ledger.charge(
            f"{label}.radius", radius_inner_eps, charged_epsilon=radius_charged_eps
        )

    # Step 4: clipped mean of all of H over [0, radius], halved.
    radius = radius_result.radius
    exact_clipped = clipped_mean(paired, 0.0, radius) if radius > 0 else 0.0
    noise_scale = 8.0 * radius / (epsilon * n)
    # The clipped mean of H has sensitivity radius / n_pairs = 2 radius / n, so
    # this noise corresponds to spending eps / 4 on the release.
    if ledger is not None:
        ledger.charge(f"{label}.noise", epsilon / 4.0)
    noisy = exact_clipped + float(laplace_noise(noise_scale, generator))
    estimate = 0.5 * noisy

    return VarianceResult(
        variance=float(estimate),
        iqr_lower_bound=iqr_lb,
        radius_used=radius_result,
        noise_scale=noise_scale,
        subsample_size=m,
        pair_count=int(n_pairs),
        inner_epsilon=inner_eps,
        clipped_count=count_outside(paired, 0.0, radius) if radius > 0 else int(n_pairs),
        sample_variance=float(np.var(data)),
    )
