"""``EstimateIQR`` — Algorithm 10, Theorem 6.2.

The universal IQR estimator is deliberately simple: privately find a bucket
size (the IQR lower bound divided by ``n``), then release the two quartiles
with the infinite-domain private quantile (Algorithm 6) and subtract.  The
resulting convergence rate is ``alpha ∝ 1/(eps n) + 1/sqrt(n)``, exponentially
better in its privacy term than the ``1/(eps log n)`` rate of the only prior
(approximate-DP) universal scale estimator [DL09].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.core.iqr_lower_bound import IQRLowerBoundResult, estimate_iqr_lower_bound
from repro.dataview import DatasetView
from repro.empirical.quantile import EmpiricalQuantileResult, estimate_empirical_quantile
from repro.exceptions import InsufficientDataError

__all__ = ["IQRResult", "estimate_iqr"]


@dataclass(frozen=True)
class IQRResult:
    """Universal private IQR estimate plus analysis-only diagnostics.

    Attributes
    ----------
    iqr:
        The ε-DP estimate of ``IQR_P = F^{-1}(3/4) - F^{-1}(1/4)``.
    lower_quartile, upper_quartile:
        The two private quantile releases the estimate is built from.
    iqr_lower_bound:
        Result of the private bucket-size search.
    bucket_size:
        Discretization bucket used for the quantile calls (``IQR_lb / n``).
    sample_iqr:
        *Non-private diagnostic*: the empirical IQR ``X_{3n/4} - X_{n/4}``.
    """

    iqr: float
    lower_quartile: EmpiricalQuantileResult
    upper_quartile: EmpiricalQuantileResult
    iqr_lower_bound: IQRLowerBoundResult
    bucket_size: float
    sample_iqr: float


def estimate_iqr(
    values: Sequence[float],
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    bucket_size: Optional[float] = None,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "iqr",
) -> IQRResult:
    """Universal ε-DP estimator of the interquartile range (Algorithm 10).

    Parameters
    ----------
    values:
        An i.i.d. sample ``D ~ P^n``.
    epsilon, beta:
        Privacy budget (split ``eps/3`` per step) and failure probability.
    bucket_size:
        Override for the discretization bucket; defaults to the private IQR
        lower bound divided by ``n``.
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.asarray(values, dtype=float)
    if data.size < 8:
        raise InsufficientDataError(f"estimate_iqr needs at least 8 samples, got {data.size}")
    generator = resolve_rng(rng)
    n = data.size

    # A DatasetView threads through to the quantile releases so their sort /
    # grid work comes off the shared sketches; the lower-bound search keeps
    # the raw array (its permutation subsampling is per-query by design).
    view = values if isinstance(values, DatasetView) else None

    if bucket_size is None:
        iqr_lb = estimate_iqr_lower_bound(
            data,
            epsilon / 3.0,
            beta / 6.0,
            generator,
            ledger=ledger,
            label=f"{label}.iqr_lower_bound",
        )
        bucket = iqr_lb.value / n
    else:
        iqr_lb = IQRLowerBoundResult(
            value=float(bucket_size) * n,
            branch="given",
            up_index=None,
            down_index=None,
            pair_count=0,
        )
        bucket = float(bucket_size)

    tau_low = max(1, n // 4)
    tau_high = min(n, (3 * n) // 4)

    lower = estimate_empirical_quantile(
        view if view is not None else data,
        tau_low,
        epsilon / 3.0,
        beta / 6.0,
        generator,
        bucket_size=bucket,
        ledger=ledger,
        label=f"{label}.lower_quartile",
    )
    upper = estimate_empirical_quantile(
        view if view is not None else data,
        tau_high,
        epsilon / 3.0,
        beta / 6.0,
        generator,
        bucket_size=bucket,
        ledger=ledger,
        label=f"{label}.upper_quartile",
    )

    sorted_data = view.sorted_values if view is not None else np.sort(data)
    sample_iqr = float(sorted_data[tau_high - 1] - sorted_data[tau_low - 1])

    return IQRResult(
        iqr=float(upper.value - lower.value),
        lower_quartile=lower,
        upper_quartile=upper,
        iqr_lower_bound=iqr_lb,
        bucket_size=bucket,
        sample_iqr=sample_iqr,
    )
