"""The paper's primary contribution: universal ε-DP statistical estimators.

* :func:`estimate_iqr_lower_bound` — ``EstimateIQRLowerBound`` (Algorithm 7),
  the private bucket-size search that removes assumption A2;
* :func:`estimate_mean` — ``EstimateMean`` (Algorithm 8, Theorems 4.5-4.9);
* :func:`estimate_variance` — ``EstimateVariance`` (Algorithm 9, Theorems 5.2-5.5);
* :func:`estimate_iqr` — ``EstimateIQR`` (Algorithm 10, Theorem 6.2).

All of them work for an arbitrary, unknown continuous distribution P with no
boundedness assumptions on its mean or variance.
"""

from repro.core.iqr import IQRResult, estimate_iqr
from repro.core.iqr_lower_bound import IQRLowerBoundResult, estimate_iqr_lower_bound
from repro.core.mean import MeanResult, estimate_mean
from repro.core.quantiles import QuantilesResult, estimate_quantiles
from repro.core.variance import VarianceResult, estimate_variance

__all__ = [
    "IQRLowerBoundResult",
    "estimate_iqr_lower_bound",
    "MeanResult",
    "estimate_mean",
    "VarianceResult",
    "estimate_variance",
    "IQRResult",
    "estimate_iqr",
    "QuantilesResult",
    "estimate_quantiles",
]
