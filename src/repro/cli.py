"""Command-line interface: DP statistics over a CSV column with no domain bounds.

Usage (also available as ``python -m repro``)::

    python -m repro mean      data.csv --column salary --epsilon 0.5
    python -m repro variance  data.csv --column salary --epsilon 0.5
    python -m repro iqr       data.csv --column salary --epsilon 0.5
    python -m repro quantiles data.csv --column latency_us --levels 0.5 0.95 0.99

The CLI is a thin wrapper around the universal estimators: it never asks for a
range, a sigma bound or a distribution family — only the data, a privacy
budget, and (optionally) a seed for reproducibility.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro import (
    PrivacyLedger,
    estimate_iqr,
    estimate_mean,
    estimate_quantiles,
    estimate_variance,
)
from repro.exceptions import DomainError, ReproError

__all__ = ["build_parser", "load_column", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Universal pure-DP estimators for mean, variance, IQR and quantiles.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("csv_path", type=Path, help="Path to the input CSV file")
        sub.add_argument(
            "--column", required=True, help="Column name (header) or 0-based index to analyse"
        )
        sub.add_argument("--epsilon", type=float, default=1.0, help="Privacy budget (default 1.0)")
        sub.add_argument("--beta", type=float, default=1.0 / 3.0, help="Failure probability")
        sub.add_argument("--seed", type=int, default=None, help="Seed for reproducible noise")
        sub.add_argument(
            "--show-ledger", action="store_true", help="Print the per-mechanism budget spends"
        )

    for name, help_text in (
        ("mean", "estimate the statistical mean"),
        ("variance", "estimate the statistical variance"),
        ("iqr", "estimate the interquartile range"),
    ):
        add_common(subparsers.add_parser(name, help=help_text))

    quantiles = subparsers.add_parser("quantiles", help="estimate one or more quantiles")
    add_common(quantiles)
    quantiles.add_argument(
        "--levels",
        type=float,
        nargs="+",
        default=[0.5],
        help="Quantile levels in (0, 1), e.g. --levels 0.5 0.95 0.99",
    )
    return parser


def load_column(csv_path: Path, column: str) -> np.ndarray:
    """Load one numeric column from a CSV file (by header name or 0-based index)."""
    if not csv_path.exists():
        raise DomainError(f"input file not found: {csv_path}")
    with open(csv_path, newline="") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row]
    if not rows:
        raise DomainError(f"input file is empty: {csv_path}")

    header = rows[0]
    if column in header:
        index = header.index(column)
        body = rows[1:]
    else:
        try:
            index = int(column)
        except ValueError as exc:
            raise DomainError(
                f"column {column!r} is neither a header of {header} nor an integer index"
            ) from exc
        # Heuristic: if the first row's target cell is not numeric, treat it as a header.
        body = rows
        try:
            float(rows[0][index])
        except (ValueError, IndexError):
            body = rows[1:]

    values: List[float] = []
    for row_number, row in enumerate(body, start=1):
        if index >= len(row) or row[index].strip() == "":
            continue
        try:
            values.append(float(row[index]))
        except ValueError as exc:
            raise DomainError(
                f"non-numeric value {row[index]!r} in row {row_number} of column {column!r}"
            ) from exc
    if not values:
        raise DomainError(f"no numeric values found in column {column!r}")
    return np.asarray(values, dtype=float)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        data = load_column(args.csv_path, args.column)
        rng = np.random.default_rng(args.seed)
        ledger = PrivacyLedger()

        if args.command == "mean":
            result = estimate_mean(data, args.epsilon, args.beta, rng, ledger=ledger)
            print(f"dp_mean={result.mean:.6g}")
        elif args.command == "variance":
            result = estimate_variance(data, args.epsilon, args.beta, rng, ledger=ledger)
            print(f"dp_variance={result.variance:.6g}")
        elif args.command == "iqr":
            result = estimate_iqr(data, args.epsilon, args.beta, rng, ledger=ledger)
            print(f"dp_iqr={result.iqr:.6g}")
        elif args.command == "quantiles":
            result = estimate_quantiles(
                data, args.levels, args.epsilon, args.beta, rng, ledger=ledger
            )
            for level, value in result.as_dict().items():
                print(f"dp_q{level:g}={value:.6g}")
        else:  # pragma: no cover - argparse enforces the choices
            parser.error(f"unknown command {args.command!r}")

        print(f"records={data.size}")
        print(f"epsilon_spent={ledger.total_epsilon:.6g}")
        if args.show_ledger:
            print(ledger.summary())
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
