"""Command-line interface: DP statistics over a CSV column with no domain bounds.

Usage (also available as ``python -m repro``)::

    python -m repro mean      data.csv --column salary --epsilon 0.5
    python -m repro variance  data.csv --column salary --epsilon 0.5
    python -m repro iqr       data.csv --column salary --epsilon 0.5
    python -m repro quantiles data.csv --column latency_us --levels 0.5 0.95 0.99

The CLI is a thin wrapper around the universal estimators: it never asks for a
range, a sigma bound or a distribution family — only the data, a privacy
budget, and (optionally) a seed for reproducibility.

``--trials N`` repeats the mean/variance/iqr release N times through
:mod:`repro.engine` (fan out with ``--workers``) and reports the spread of the
noisy estimates — useful for calibrating how much a single release can be
trusted.  The trial fan-out is deterministic for a fixed ``--seed`` regardless
of the worker count.  Each trial is an independent full-budget release, so
publishing all of them costs ``N * epsilon``; the spread is meant for offline
calibration, not joint publication.

``suite`` releases mean, variance and IQR in one invocation.  The three
statistics are independent grid cells executed through
:func:`repro.engine.run_grid` on one worker pool (``--grid-workers N``), and
``--trials`` repeats each of them.  As with ``--trials``, every release is
independent and full-budget: the total spend reported is
``3 * trials * epsilon``.  Results are bit-for-bit identical for any
``--grid-workers`` value given the same ``--seed``.

``serve`` starts a :mod:`repro.service` HTTP front-end: the CSV column is
registered as a dataset with a finite total privacy budget and queries are
answered over JSON until the budget runs out (identical repeated queries are
served from cache at zero marginal epsilon).  ``--config serving.toml``
replaces the single-column arguments with a declarative multi-dataset
deployment (per-dataset sources and budgets, joint budget groups, cache and
worker settings), and ``--frontend async`` swaps the thread-per-connection
server for the asyncio front-end that answers cache hits and refusals
directly on the event loop.  ``query`` is the matching client::

    python -m repro serve data.csv --column salary --budget 20 --port 8080
    python -m repro serve --config serving.toml --frontend async
    python -m repro query mean --url http://127.0.0.1:8080 \
        --dataset salary --epsilon 0.5

``trace`` and ``audit`` are the observability companions (:mod:`repro.obs`):
``trace`` lists or fetches the pipeline-stage traces a running server keeps
in its ring (``GET /debug/traces``), ``audit verify`` recomputes a service's
hash-chained privacy audit log and fails on any tampered byte, and ``audit
spend`` replays it into per-budget-owner epsilon totals — optionally
cross-checked bit-for-bit against the live ledgers with ``--url``::

    python -m repro trace --url http://127.0.0.1:8080
    python -m repro trace 4f6d2a9c1b7e3508 --url http://127.0.0.1:8080
    python -m repro audit verify audit.jsonl
    python -m repro audit spend audit.jsonl --url http://127.0.0.1:8080

``lint`` statically checks sources against the project's own invariants
(:mod:`repro.lint`): REP001 no global-RNG calls, REP002 lock discipline,
REP003 reserve→commit budget pairing, REP004 estimator-spec explicitness,
REP005 front-end exception containment, REP006 audit-trail coverage of
budget and cache touch-points, REP007 sorted-input contract, REP008 cluster
budget isolation (only the coordinator owns a BudgetManager).  Exit code 0
means clean, 1 means findings, 2 means internal/usage error::

    python -m repro lint src
    python -m repro lint src --select REP002 REP003
    python -m repro lint src --ignore REP005 --format json
    python -m repro lint src --report lint-report.json

Silence one line with ``# repro: ignore[REP001]`` plus a comment saying why
the invariant does not apply there; suppressions stay listed in the report.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro import (
    PrivacyLedger,
    estimate_iqr,
    estimate_mean,
    estimate_quantiles,
    estimate_variance,
)
from repro._rng import spawn_seeds
from repro.engine import GridCell, run_batch, run_grid
from repro.estimators import get_estimator, iter_estimators, registered_kinds
from repro.exceptions import DomainError, MechanismError, ReproError

__all__ = ["build_parser", "load_column", "main"]


def _package_version() -> str:
    """The installed distribution version, falling back to the module's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro-universal-statistics")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        pass
    from repro import __version__

    return __version__


def _suite_kinds() -> List[str]:
    """Kinds the ``suite`` command can release: scalar, single-column,
    runnable without any required parameter (derived from the registry)."""
    return [
        spec.name
        for spec in iter_estimators()
        if spec.scalar
        and spec.dimension == "univariate"
        and not any(param.required for param in spec.params)
    ]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Universal pure-DP estimators for mean, variance, IQR and quantiles.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("csv_path", type=Path, help="Path to the input CSV file")
        sub.add_argument(
            "--column", required=True, help="Column name (header) or 0-based index to analyse"
        )
        sub.add_argument("--epsilon", type=float, default=1.0, help="Privacy budget (default 1.0)")
        sub.add_argument("--beta", type=float, default=1.0 / 3.0, help="Failure probability")
        sub.add_argument("--seed", type=int, default=None, help="Seed for reproducible noise")
        sub.add_argument(
            "--show-ledger", action="store_true", help="Print the per-mechanism budget spends"
        )
        sub.add_argument(
            "--trials",
            type=int,
            default=1,
            help="Repeat the release this many times and report the estimate spread",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="Worker processes for --trials > 1 (results are worker-count independent)",
        )

    for name, help_text in (
        ("mean", "estimate the statistical mean"),
        ("variance", "estimate the statistical variance"),
        ("iqr", "estimate the interquartile range"),
    ):
        add_common(subparsers.add_parser(name, help=help_text))

    quantiles = subparsers.add_parser("quantiles", help="estimate one or more quantiles")
    add_common(quantiles)
    quantiles.add_argument(
        "--levels",
        type=float,
        nargs="+",
        default=[0.5],
        help="Quantile levels in (0, 1), e.g. --levels 0.5 0.95 0.99",
    )

    suite = subparsers.add_parser(
        "suite",
        help="estimate mean, variance and IQR in one run (three independent "
             "releases); --kinds swaps in any parameter-free registered kind",
    )
    add_common(suite)
    suite.add_argument(
        "--grid-workers",
        type=int,
        default=1,
        help=(
            "Worker processes for the per-statistic grid fan-out "
            "(results are worker-count independent)"
        ),
    )
    suite.add_argument(
        "--kinds",
        nargs="+",
        choices=_suite_kinds(),
        default=None,
        metavar="KIND",
        help=(
            "Statistics to release (default: mean variance iqr). Any scalar "
            f"single-column kind needing no parameters works: {_suite_kinds()}"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve DP queries over HTTP: one CSV column, or a multi-dataset "
             "--config deployment",
    )
    serve.add_argument(
        "csv_path", type=Path, nargs="?", default=None,
        help="Path to the input CSV file (omit when using --config)",
    )
    serve.add_argument(
        "--config", type=Path, default=None, metavar="FILE",
        help="Serving config (.toml or .json): many datasets, joint budget "
             "groups, cache/pool/front-end settings in one file",
    )
    serve.add_argument(
        "--column", default=None,
        help="Column name (header) or 0-based index to serve",
    )
    serve.add_argument(
        "--dataset", default=None,
        help="Dataset name clients address (default: the column name)",
    )
    serve.add_argument(
        "--budget", type=float, default=None,
        help="Total privacy budget (epsilon) the dataset may ever spend",
    )
    serve.add_argument(
        "--analyst-budget", action="append", default=[], metavar="NAME=EPS",
        help="Per-analyst sub-budget (repeatable), e.g. --analyst-budget alice=2.0",
    )
    serve.add_argument(
        "--frontend", choices=["threaded", "async"], default=None,
        help="HTTP front-end: 'threaded' (one thread per connection) or "
             "'async' (single event loop; cache hits and refusals never "
             "leave it). Default threaded, or the config file's choice.",
    )
    serve.add_argument("--host", default=None, help="Bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (0 picks a free ephemeral port, printed on startup; "
             "default 8080)",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="Service seed: answers become deterministic per query, "
             "independent of worker count",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="Engine-pool workers for fanning out concurrent distinct queries",
    )
    serve.add_argument(
        "--cache-size", type=int, default=None,
        help="Answer-cache entries (default unbounded; 0 disables caching)",
    )
    serve.add_argument(
        "--max-body", type=int, default=None,
        help="Largest accepted request body in bytes (oversized posts get 413)",
    )
    serve.add_argument(
        "--allow-register", action="store_true",
        help="Accept POST /datasets registrations from clients",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="Suppress per-request access logging"
    )

    compose = subparsers.add_parser(
        "compose",
        help="boot, inspect or tear down a sharded serving tier (router + "
             "shard replicas + budget coordinator) from one [cluster] config",
    )
    compose.add_argument(
        "--config", type=Path, default=None, metavar="FILE",
        help="Serving config with a [cluster] section (required for "
             "--up/--generate)",
    )
    compose.add_argument(
        "--dir", type=Path, default=Path("compose"), metavar="DIR",
        help="Compose directory: generated configs, logs and state.json "
             "(default: ./compose)",
    )
    compose.add_argument(
        "--shards", type=int, default=None,
        help="Override the config's [cluster] shards= replica count",
    )
    action = compose.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--up", action="store_true",
        help="Generate the deployment and boot coordinator, shards and "
             "router; blocks until every process answers, then returns",
    )
    action.add_argument(
        "--down", action="store_true",
        help="Stop every process recorded in DIR/state.json",
    )
    action.add_argument(
        "--ps", action="store_true",
        help="Report the composed processes and their liveness",
    )
    action.add_argument(
        "--generate", action="store_true",
        help="Only write the per-shard configs and router plan into DIR",
    )

    client = subparsers.add_parser(
        "query", help="send one query to a running 'repro serve' instance"
    )
    client.add_argument(
        "kind",
        metavar="KIND",
        help="Statistic to request. The server's registry is authoritative "
             "(an unknown kind gets a structured 400 listing valid kinds); "
             f"this build registers: {', '.join(registered_kinds())}",
    )
    client.add_argument("--url", required=True, help="Service base URL")
    client.add_argument("--dataset", required=True, help="Registered dataset name")
    client.add_argument("--epsilon", type=float, default=1.0, help="Privacy budget")
    client.add_argument("--beta", type=float, default=1.0 / 3.0, help="Failure probability")
    client.add_argument(
        "--levels", type=float, nargs="+", default=None,
        help="Quantile levels (quantile queries only)",
    )
    client.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="Kind-specific parameter (repeatable), e.g. --param radius=1e6 "
             "for baseline.* kinds; values parse as JSON, falling back to text",
    )
    client.add_argument("--analyst", default=None, help="Analyst name for sub-budgets")
    client.add_argument(
        "--timeout", type=float, default=30.0, help="HTTP timeout in seconds"
    )

    subparsers.add_parser(
        "kinds",
        help="list every registered estimator kind with its parameter schema",
    )

    admin = subparsers.add_parser(
        "admin",
        help="drive the live control plane of a running 'repro serve' instance",
    )
    admin.add_argument(
        "action", choices=("reload", "drain", "stats"),
        help="reload: hot-apply a config; drain: stop admitting on a dataset; "
             "stats: print the control-plane state document",
    )
    admin.add_argument("--url", required=True, help="Service base URL")
    admin.add_argument(
        "--token", default=None,
        help="Admin shared secret (default: the REPRO_ADMIN_TOKEN environment "
             "variable)",
    )
    admin.add_argument(
        "--config", type=Path, default=None, metavar="FILE",
        help="reload only: send this .toml/.json config inline instead of "
             "re-reading the file the server booted from",
    )
    admin.add_argument(
        "--dataset", default=None, help="drain only: the dataset to drain"
    )
    admin.add_argument(
        "--undrain", action="store_true",
        help="drain only: clear the drain flag instead of setting it",
    )
    admin.add_argument(
        "--timeout", type=float, default=30.0, help="HTTP timeout in seconds"
    )

    trace = subparsers.add_parser(
        "trace",
        help="inspect recorded query traces on a running 'repro serve' "
             "instance (GET /debug/traces)",
    )
    trace.add_argument(
        "trace_id", nargs="?", default=None, metavar="TRACE_ID",
        help="Trace id to fetch (omit to list the most recent traces)",
    )
    trace.add_argument("--url", required=True, help="Service base URL")
    trace.add_argument(
        "--timeout", type=float, default=30.0, help="HTTP timeout in seconds"
    )

    audit = subparsers.add_parser(
        "audit",
        help="verify or replay a service's hash-chained privacy audit log",
    )
    audit.add_argument(
        "action", choices=("verify", "spend"),
        help="verify: recompute the hash chain and fail on any tamper; "
             "spend: replay committed epsilon per budget owner, analyst and "
             "kind",
    )
    audit.add_argument("log", type=Path, help="Path to the audit JSONL file")
    audit.add_argument(
        "--url", default=None,
        help="spend only: cross-check the replayed owner totals against the "
             "live service's GET /datasets ledgers (exact float equality; "
             "the log must cover the server's current lifetime)",
    )
    audit.add_argument(
        "--timeout", type=float, default=30.0, help="HTTP timeout in seconds"
    )

    lint = subparsers.add_parser(
        "lint",
        help="statically check sources against the repro invariants "
             "(REP001..REP008: determinism, lock discipline, budget pairing)",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="Files or directories to lint (default: ./src if present, else .)",
    )
    lint.add_argument(
        "--select", nargs="+", default=None, metavar="RULE",
        help="Only run these rule ids (e.g. --select REP001 REP002)",
    )
    lint.add_argument(
        "--ignore", nargs="+", default=None, metavar="RULE",
        help="Skip these rule ids",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="Report format on stdout (default: text)",
    )
    lint.add_argument(
        "--report", type=Path, default=None, metavar="FILE",
        help="Also write the JSON report document to FILE",
    )
    return parser


def load_column(csv_path: Path, column: str) -> np.ndarray:
    """Load one numeric column from a CSV file (by header name or 0-based index)."""
    if not csv_path.exists():
        raise DomainError(f"input file not found: {csv_path}")
    with open(csv_path, newline="") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row]
    if not rows:
        raise DomainError(f"input file is empty: {csv_path}")

    header = rows[0]
    if column in header:
        index = header.index(column)
        body = rows[1:]
    else:
        try:
            index = int(column)
        except ValueError as exc:
            raise DomainError(
                f"column {column!r} is neither a header of {header} nor an integer index"
            ) from exc
        # Heuristic: if the first row's target cell is not numeric, treat it as a header.
        body = rows
        try:
            float(rows[0][index])
        except (ValueError, IndexError):
            body = rows[1:]

    values: List[float] = []
    for row_number, row in enumerate(body, start=1):
        if index >= len(row) or row[index].strip() == "":
            continue
        try:
            values.append(float(row[index]))
        except ValueError as exc:
            raise DomainError(
                f"non-numeric value {row[index]!r} in row {row_number} of column {column!r}"
            ) from exc
    if not values:
        raise DomainError(f"no numeric values found in column {column!r}")
    return np.asarray(values, dtype=float)


#: Scalar single-release closures by command, used by the --trials mode.
_SCALAR_ESTIMATORS = {
    "mean": lambda data, epsilon, beta, gen, ledger: estimate_mean(
        data, epsilon, beta, gen, ledger=ledger
    ).mean,
    "variance": lambda data, epsilon, beta, gen, ledger: estimate_variance(
        data, epsilon, beta, gen, ledger=ledger
    ).variance,
    "iqr": lambda data, epsilon, beta, gen, ledger: estimate_iqr(
        data, epsilon, beta, gen, ledger=ledger
    ).iqr,
}


def _run_trial_mode(args: argparse.Namespace, data: np.ndarray) -> None:
    """Repeat the release ``args.trials`` times via the engine and print the spread."""
    if args.command not in _SCALAR_ESTIMATORS:
        raise DomainError(
            f"--trials > 1 supports the scalar commands {sorted(_SCALAR_ESTIMATORS)}; "
            f"run {args.command!r} once per invocation instead"
        )
    trial = _release_trial_fn(args.command, data, args.epsilon, args.beta)
    batch = run_batch(trial, args.trials, args.seed, workers=args.workers)
    successes = [entry for entry in batch.results if entry[0] is not None]
    n_failures = batch.trials - len(successes)
    if not successes:
        first_error = next(entry[3] for entry in batch.results if entry[3])
        raise DomainError(f"all {batch.trials} trials failed (first: {first_error})")
    estimates = np.asarray([estimate for estimate, _, _, _ in successes])
    total_spent = sum(spend for _, spend, _, _ in batch.results)
    q10, q50, q90 = np.quantile(estimates, [0.1, 0.5, 0.9])
    print(f"dp_{args.command}_median={q50:.6g}")
    print(f"dp_{args.command}_q10={q10:.6g}")
    print(f"dp_{args.command}_q90={q90:.6g}")
    print(f"trials={batch.trials}")
    print(f"workers={batch.workers}")
    print(f"failures={n_failures}")
    print(f"records={data.size}")
    print(f"epsilon_per_trial={successes[0][1]:.6g}")
    print(f"epsilon_total_spent={total_spent:.6g}")
    if args.show_ledger:
        print("per-trial ledger (first successful trial):")
        print(successes[0][2])


def _release_trial_fn(command: str, data: np.ndarray, epsilon: float, beta: float):
    """Build the engine trial body for one scalar release command.

    The three classic commands keep their direct closures (so tests can
    monkeypatch :data:`_SCALAR_ESTIMATORS`); every other command resolves
    through the estimator-spec registry, which is how ``suite --kinds``
    releases any parameter-free registered kind.  Failures (e.g. a rejected
    propose-test-release check) are captured inside the trial so the ledger
    survives: estimators charge the budget as they go, so a failed trial has
    still spent epsilon and must be counted.
    """
    if command in _SCALAR_ESTIMATORS:
        release = _SCALAR_ESTIMATORS[command]

        def run_release(generator, ledger):
            return float(release(data, epsilon, beta, generator, ledger))

    else:
        spec = get_estimator(command)
        params = spec.validate_params({})

        def run_release(generator, ledger):
            return float(
                spec.run(data, generator, ledger, epsilon=epsilon, beta=beta, **params)
            )

    def trial(index: int, generator: np.random.Generator):
        ledger = PrivacyLedger()
        try:
            estimate = run_release(generator, ledger)
        except MechanismError as exc:
            return None, ledger.total_epsilon, ledger.summary(), str(exc)
        return estimate, ledger.total_epsilon, ledger.summary(), None

    return trial


def _print_spread(command: str, batch) -> float:
    """Print the estimate spread of one release batch; returns epsilon spent."""
    successes = [entry for entry in batch.results if entry[0] is not None]
    n_failures = batch.trials - len(successes)
    if not successes:
        first_error = next(entry[3] for entry in batch.results if entry[3])
        raise DomainError(f"all {batch.trials} trials failed (first: {first_error})")
    estimates = np.asarray([estimate for estimate, _, _, _ in successes])
    total_spent = sum(spend for _, spend, _, _ in batch.results)
    if batch.trials == 1:
        print(f"dp_{command}={estimates[0]:.6g}")
    else:
        q10, q50, q90 = np.quantile(estimates, [0.1, 0.5, 0.9])
        print(f"dp_{command}_median={q50:.6g}")
        print(f"dp_{command}_q10={q10:.6g}")
        print(f"dp_{command}_q90={q90:.6g}")
        print(f"dp_{command}_failures={n_failures}")
    return total_spent


def _run_suite(args: argparse.Namespace, data: np.ndarray) -> None:
    """Release a set of statistics as one grid over a shared worker pool.

    The default set is the classic mean/variance/IQR trio; ``--kinds``
    substitutes any parameter-free scalar kinds from the estimator registry
    (e.g. ``baseline.dwork_lei_iqr``).  Commands run in sorted order so the
    per-statistic seeds — and therefore the printed estimates — are
    independent of the order the kinds were named in.
    """
    commands = sorted(set(args.kinds)) if args.kinds else sorted(_SCALAR_ESTIMATORS)
    # One independent child seed per statistic, derived up-front: the suite is
    # reproducible for a fixed --seed no matter how cells are scheduled.
    cell_seeds = spawn_seeds(args.seed, len(commands))
    cells = [
        GridCell(
            trial_fn=_release_trial_fn(command, data, args.epsilon, args.beta),
            trials=args.trials,
            rng=int(seed),
            key=command,
        )
        for command, seed in zip(commands, cell_seeds)
    ]
    grid = run_grid(cells, workers=args.grid_workers)
    total_spent = 0.0
    for command in commands:
        total_spent += _print_spread(command, grid.by_key(command))
    print(f"records={data.size}")
    print(f"trials_per_statistic={args.trials}")
    print(f"grid_workers={grid.workers}")
    print(f"epsilon_total_spent={total_spent:.6g}")
    if args.show_ledger:
        first = next(
            entry for entry in grid.by_key(commands[0]).results if entry[0] is not None
        )
        print(f"per-trial ledger (first successful {commands[0]} trial):")
        print(first[2])


def _parse_analyst_budgets(entries: Sequence[str]) -> dict:
    budgets = {}
    for entry in entries:
        name, sep, eps = entry.partition("=")
        if not sep or not name:
            raise DomainError(
                f"--analyst-budget expects NAME=EPS, got {entry!r}"
            )
        try:
            budgets[name] = float(eps)
        except ValueError as exc:
            raise DomainError(
                f"--analyst-budget {entry!r}: {eps!r} is not a number"
            ) from exc
    return budgets


def _serve_config_from_args(args: argparse.Namespace):
    """Resolve the effective :class:`ServingConfig` from --config and/or flags.

    A config file supplies the deployment; explicit CLI flags override its
    service-level settings.  Without --config, the legacy single-CSV-column
    arguments build an equivalent one-dataset config.
    """
    import dataclasses

    from repro.service import DatasetConfig, ServingConfig, load_serving_config

    if args.config is not None:
        if args.csv_path is not None or args.column is not None \
                or args.dataset is not None or args.budget is not None \
                or args.analyst_budget:
            raise DomainError(
                "--config describes the datasets itself; drop the CSV path, "
                "--column, --dataset, --budget and --analyst-budget arguments"
            )
        config = load_serving_config(args.config)
    else:
        if args.csv_path is None or args.column is None or args.budget is None:
            raise DomainError(
                "serve needs either --config FILE, or a CSV path with "
                "--column and --budget"
            )
        analyst_budgets = _parse_analyst_budgets(args.analyst_budget)
        config = ServingConfig(
            datasets=(
                DatasetConfig(
                    name=args.dataset or str(args.column),
                    source=str(args.csv_path),
                    column=str(args.column),
                    budget=args.budget,
                    analyst_budgets=analyst_budgets or None,
                ),
            ),
        )

    overrides = {}
    for name in ("host", "port", "seed", "workers", "cache_size",
                 "frontend", "max_body"):
        value = getattr(args, name)
        if value is not None:
            overrides[name] = value
    if args.allow_register:
        overrides["allow_register"] = True
    if args.quiet:
        overrides["quiet"] = True
    config = dataclasses.replace(config, **overrides)
    if config.workers < 1:
        raise DomainError(f"--workers must be at least 1, got {config.workers}")
    if config.cache_size is not None and config.cache_size < 0:
        raise DomainError(f"--cache-size must be >= 0, got {config.cache_size}")
    if config.max_body is not None and config.max_body < 1:
        raise DomainError(f"--max-body must be at least 1, got {config.max_body}")
    return config


def _describe_service(service, config) -> None:
    for dataset in service.registry:
        budget = (
            f"joint budget group {dataset.group!r} "
            f"(epsilon={dataset.budget.capacity:g})"
            if dataset.group is not None
            else f"total budget epsilon={dataset.budget.capacity:g}"
        )
        print(
            f"dataset {dataset.name!r}: {dataset.records} records, {budget}, "
            f"workers={config.workers}, seed={config.seed}",
            flush=True,
        )


def _run_serve(args: argparse.Namespace) -> int:
    """Start a repro.service HTTP front-end (threaded or async)."""
    from repro.service import build_service, make_server, serve_async

    config = _serve_config_from_args(args)
    with build_service(config) as built:
        service = built.service
        if config.frontend == "async":
            def on_ready(server) -> None:
                host, port = server.server_address
                print(f"repro-service listening on http://{host}:{port}", flush=True)
                print("frontend=async", flush=True)
                _describe_service(service, config)

            try:
                serve_async(
                    service, config.host, config.port,
                    allow_register=config.allow_register, quiet=config.quiet,
                    max_body=config.max_body, on_ready=on_ready,
                    limiter=built.limiter, admin=built.admin,
                )
            except KeyboardInterrupt:
                print("shutting down", flush=True)
            return 0

        server = make_server(
            service, config.host, config.port,
            allow_register=config.allow_register, quiet=config.quiet,
            max_body=config.max_body,
            limiter=built.limiter, admin=built.admin,
        )
        host, port = server.server_address[:2]
        print(f"repro-service listening on http://{host}:{port}", flush=True)
        print("frontend=threaded", flush=True)
        _describe_service(service, config)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down", flush=True)
        finally:
            server.server_close()
    return 0


def _run_compose(args: argparse.Namespace) -> int:
    """``repro compose --up/--down/--ps/--generate`` (the sharded tier)."""
    from repro.cluster.compose import compose_down, compose_ps, compose_up, generate_plan

    if args.generate or args.up:
        if args.config is None:
            raise DomainError("compose --up/--generate needs --config FILE")
        if args.generate:
            plan = generate_plan(args.config, args.dir, shards=args.shards)
            print(f"generated {plan.shards} shard config(s) in {plan.directory}")
            print(f"router plan: {plan.router_plan}")
            return 0
        handle = compose_up(args.config, args.dir, shards=args.shards)
        print(f"cluster up: {handle.plan.shards} shard(s)")
        print(f"router: {handle.router_url}")
        print(
            f"coordinator: {handle.plan.host}:{handle.plan.coordinator_port}"
        )
        for index in range(handle.plan.shards):
            print(f"shard{index}: {handle.shard_url(index)}")
        print(f"state: {handle.plan.directory / 'state.json'}")
        return 0
    if args.down:
        stopped = compose_down(args.dir)
        if stopped == 0:
            print(f"nothing to stop: no state.json under {args.dir}")
        else:
            print(f"stopped {stopped} process(es)")
        return 0
    report = compose_ps(args.dir)
    if not report:
        print(f"no composed cluster under {args.dir}")
        return 1
    exit_code = 0
    for entry in report:
        status = "up" if entry["alive"] else "dead"
        if not entry["alive"]:
            exit_code = 1
        address = entry["address"] or "-"
        print(f"{entry['name']:<12} pid={entry['pid']:<8} {address:<22} {status}")
    return exit_code


def _parse_query_params(entries: Sequence[str]) -> dict:
    """Decode repeatable ``--param NAME=VALUE`` flags into a params object.

    Values parse as JSON (numbers, booleans, arrays like ``[0.5,0.9]``) with
    a plain-string fallback; the server's spec validation has the final say.
    """
    params: dict = {}
    for entry in entries:
        name, sep, value = entry.partition("=")
        if not sep or not name:
            raise DomainError(f"--param expects NAME=VALUE, got {entry!r}")
        try:
            params[name] = json.loads(value)
        except json.JSONDecodeError:
            params[name] = value
    return params


def _run_kinds(args: argparse.Namespace) -> int:
    """Print the estimator-spec registry catalogue (the GET /kinds document)."""
    for spec in iter_estimators():
        shape = "scalar" if spec.scalar else "vector"
        print(f"{spec.name}")
        print(f"  description: {spec.description}")
        print(
            f"  reservation_factor={spec.reservation:g} "
            f"min_records={spec.min_records} shape={shape} "
            f"dimension={spec.dimension}"
        )
        for param in spec.params:
            need = "required" if param.required else (
                f"default={param.default!r}" if param.default is not None
                else "optional"
            )
            print(f"  param {param.name} ({param.type}, {need})")
    return 0


def _error_code(document: dict) -> Optional[str]:
    """The machine-readable error code from a v1 (or legacy) document."""
    error = document.get("error")
    if isinstance(error, dict):
        return error.get("code")
    return error  # legacy pre-v1 servers carried the code as a string


def _run_query_client(args: argparse.Namespace) -> int:
    """POST one query to a running service and print the structured answer."""
    from repro.client import ServiceClient

    params = _parse_query_params(args.param)
    if args.levels:
        # Canonical spelling: quantile levels are a kind parameter.
        params.setdefault("levels", args.levels)
    client = ServiceClient(args.url, timeout=args.timeout, analyst=args.analyst)
    _, document = client.query(
        args.dataset, args.kind,
        epsilon=args.epsilon, beta=args.beta, params=params or None,
    )

    status = document.get("status", "error")
    print(f"status={status}")
    if status == "ok":
        value = document.get("value")
        if isinstance(value, list):
            print(f"value={','.join(f'{v:.6g}' for v in value)}")
        else:
            print(f"value={value:.6g}")
        print(f"cached={'yes' if document.get('cached') else 'no'}")
    if document.get("error"):
        error = document["error"]
        print(f"error={_error_code(document)}")
        message = (
            error.get("message", "") if isinstance(error, dict)
            else document.get("message", "")
        )
        print(f"message={message}")
    if document.get("epsilon_charged") is not None:
        print(f"epsilon_charged={document['epsilon_charged']:.6g}")
    if document.get("remaining") is not None:
        print(f"remaining={document['remaining']:.6g}")
    return {"ok": 0, "refused": 3, "failed": 4}.get(status, 2)


def _run_admin(args: argparse.Namespace) -> int:
    """``repro admin reload|drain|stats`` against a running service."""
    import os

    from repro.client import ServiceClient

    token = args.token or os.environ.get("REPRO_ADMIN_TOKEN")
    client = ServiceClient(args.url, timeout=args.timeout, token=token)
    if args.action == "stats":
        code, document = client.admin_state()
    elif args.action == "reload":
        config = None
        if args.config is not None:
            from repro.service.config import load_serving_config  # validates early

            load_serving_config(args.config)
            suffix = args.config.suffix.lower()
            if suffix == ".json":
                config = json.loads(args.config.read_text())
            else:
                raise DomainError(
                    "--config reloads send the document inline and need JSON; "
                    "for TOML configs let the server re-read its booted file "
                    "(run reload without --config)"
                )
        code, document = client.admin_reload(config)
    else:  # drain
        if not args.dataset:
            raise DomainError("admin drain needs --dataset NAME")
        code, document = client.admin_drain(args.dataset, not args.undrain)
    print(json.dumps(document, indent=2, sort_keys=True))
    if code >= 400:
        print(f"error: HTTP {code}: {_error_code(document)}", file=sys.stderr)
        return 2
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """``repro trace [TRACE_ID]``: list or fetch recorded query traces."""
    from repro.client import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)
    if args.trace_id is None:
        code, document = client.traces()
        if code != 200:
            print(f"error: HTTP {code}: {_error_code(document)}", file=sys.stderr)
            return 2
        tracing = document.get("tracing", {})
        print(
            f"ring={tracing.get('ring')} held={tracing.get('held')} "
            f"recorded={tracing.get('recorded')} "
            f"slow_queries={tracing.get('slow_queries')}"
        )
        for entry in document.get("traces", ()):
            meta = entry.get("meta", {})
            label = " ".join(f"{k}={v}" for k, v in sorted(meta.items()))
            print(
                f"{entry['trace']}  {entry.get('duration_ms', 0.0):.3f}ms  "
                f"spans={len(entry.get('spans', ()))}  {label}"
            )
        return 0
    code, document = client.trace(args.trace_id)
    if code != 200:
        print(f"error: HTTP {code}: {_error_code(document)}", file=sys.stderr)
        return 2
    print(json.dumps(document.get("trace", document), indent=2, sort_keys=True))
    return 0


def _run_audit(args: argparse.Namespace) -> int:
    """``repro audit verify|spend``: exit 0 clean, 1 tamper/mismatch."""
    from repro.obs import AuditChainError, replay_spend, verify_audit_log

    if args.action == "verify":
        try:
            count, final_hash = verify_audit_log(args.log)
        except AuditChainError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(f"records={count}")
        print(f"final_hash={final_hash}")
        print("chain=ok")
        return 0

    # spend — replay walks the same verified chain, so tampering fails here too.
    try:
        report = replay_spend(args.log)
    except AuditChainError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"records={report['records']}")
    for owner in sorted(report["owners"]):
        entry = report["owners"][owner]
        print(f"{owner} spent={entry['spent']!r}")
        for analyst in sorted(entry["analysts"]):
            print(f"{owner} analyst={analyst} spent={entry['analysts'][analyst]!r}")
    for kind in sorted(report["kinds"]):
        print(f"kind={kind} spent={report['kinds'][kind]!r}")
    if args.url is None:
        return 0

    from repro.client import ServiceClient

    stats = ServiceClient(args.url, timeout=args.timeout).stats()
    live = {}
    for dataset in stats.get("datasets", ()):
        if dataset.get("group") is None:
            live[f"dataset:{dataset['name']}"] = dataset["budget"]["spent"]
    for name, group in stats.get("groups", {}).items():
        live[f"group:{name}"] = group["budget"]["spent"]
    mismatches = []
    for owner in sorted(report["owners"]):
        replayed = report["owners"][owner]["spent"]
        if owner not in live:
            mismatches.append(
                f"{owner}: replay spent={replayed!r} but the live service "
                "has no such budget"
            )
        elif live[owner] != replayed:
            mismatches.append(
                f"{owner}: replay={replayed!r} live={live[owner]!r}"
            )
    for owner in sorted(live):
        if owner not in report["owners"] and live[owner] > 0.0:
            mismatches.append(
                f"{owner}: live spent={live[owner]!r} absent from the audit log"
            )
    if mismatches:
        for line in mismatches:
            print(f"mismatch: {line}", file=sys.stderr)
        return 1
    print(f"cross_check=ok owners={len(report['owners'])}")
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    """``repro lint``: exit 0 clean, 1 findings, 2 internal/usage error."""
    from repro.lint import lint_paths, render_json_text, render_text

    paths = list(args.paths)
    if not paths:
        default = Path("src")
        paths = [default] if default.is_dir() else [Path(".")]
    result = lint_paths(paths, select=args.select, ignore=args.ignore)
    if args.format == "json":
        print(render_json_text(result))
    else:
        print(render_text(result))
    if args.report is not None:
        args.report.write_text(render_json_text(result) + "\n", encoding="utf-8")
    return 0 if result.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "compose":
            return _run_compose(args)
        if args.command == "query":
            return _run_query_client(args)
        if args.command == "admin":
            return _run_admin(args)
        if args.command == "trace":
            return _run_trace(args)
        if args.command == "audit":
            return _run_audit(args)
        if args.command == "kinds":
            return _run_kinds(args)
        if args.command == "lint":
            return _run_lint(args)
        data = load_column(args.csv_path, args.column)
        if args.trials < 1:
            raise DomainError(f"--trials must be at least 1, got {args.trials}")
        if args.workers < 1:
            raise DomainError(f"--workers must be at least 1, got {args.workers}")
        if args.command == "suite":
            if args.grid_workers < 1:
                raise DomainError(
                    f"--grid-workers must be at least 1, got {args.grid_workers}"
                )
            if args.workers != 1:
                raise DomainError(
                    "suite parallelises across statistics, not within one "
                    "release; use --grid-workers instead of --workers"
                )
            _run_suite(args, data)
            return 0
        if args.trials > 1:
            _run_trial_mode(args, data)
            return 0
        rng = np.random.default_rng(args.seed)
        ledger = PrivacyLedger()

        if args.command == "mean":
            result = estimate_mean(data, args.epsilon, args.beta, rng, ledger=ledger)
            print(f"dp_mean={result.mean:.6g}")
        elif args.command == "variance":
            result = estimate_variance(data, args.epsilon, args.beta, rng, ledger=ledger)
            print(f"dp_variance={result.variance:.6g}")
        elif args.command == "iqr":
            result = estimate_iqr(data, args.epsilon, args.beta, rng, ledger=ledger)
            print(f"dp_iqr={result.iqr:.6g}")
        elif args.command == "quantiles":
            result = estimate_quantiles(
                data, args.levels, args.epsilon, args.beta, rng, ledger=ledger
            )
            for level, value in result.as_dict().items():
                print(f"dp_q{level:g}={value:.6g}")
        else:  # pragma: no cover - argparse enforces the choices
            parser.error(f"unknown command {args.command!r}")

        print(f"records={data.size}")
        print(f"epsilon_spent={ledger.total_epsilon:.6g}")
        if args.show_ledger:
            print(ledger.summary())
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # Unreadable files, refused binds, broken pipes: one clean line, no
        # traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
