"""repro — Universal Private Estimators (Dong & Yi, PODS 2023).

Pure ε-differentially private estimators for the statistical mean, variance
and interquartile range of an *arbitrary, unknown* continuous distribution
over R, with no a-priori boundedness assumptions, together with the
instance-optimal empirical mean/quantile estimators over the unbounded integer
domain they are built on.

Quick start
-----------
>>> import numpy as np
>>> from repro import estimate_mean
>>> rng = np.random.default_rng(0)
>>> data = rng.normal(loc=170.0, scale=8.0, size=20_000)
>>> result = estimate_mean(data, epsilon=1.0, rng=rng)
>>> abs(result.mean - 170.0) < 1.0
True

The public API is organised as:

* ``repro.core`` — the universal statistical estimators (Algorithms 7-10);
* ``repro.empirical`` — the empirical estimators over Z (Algorithms 3-6);
* ``repro.mechanisms`` — DP primitives (Laplace, SVT, inverse sensitivity,
  clipped mean, sub-sampling amplification);
* ``repro.distributions`` — synthetic distribution substrate with analytic
  parameters used by the benchmark harness;
* ``repro.baselines`` — re-implementations of prior estimators for the
  comparison benchmarks;
* ``repro.engine`` — deterministic batched trial execution: every
  repeated-experiment loop (trial runners, sample-complexity search,
  capability matrix, CLI ``--trials``, E1-E16 drivers) fans out through
  :func:`repro.engine.run_batch`.  Its determinism contract: per-trial
  generators are derived up-front from the base seed, so results are
  bit-for-bit identical for ``workers=1`` and ``workers=N`` and unaffected by
  other trials failing; failures are captured as structured
  :class:`repro.engine.TrialFailure` records;
* ``repro.service`` — the deployment layer: a concurrent private-query
  service where datasets are registered with a finite total privacy budget
  (atomic check-and-spend, per-analyst sub-budgets, structured refusals),
  identical repeated queries are answered from cache at zero marginal
  epsilon, and concurrent distinct queries fan out over a shared
  :class:`repro.engine.EnginePool` — with a stdlib HTTP front-end
  (``repro serve`` / ``repro query``).  Import from :mod:`repro.service`;
  it is not re-exported here to keep the core import light;
* ``repro.analysis`` / ``repro.bench`` — experiment harness.
"""

from repro.accounting import PrivacyBudget, PrivacyLedger
from repro.core import (
    IQRLowerBoundResult,
    IQRResult,
    MeanResult,
    QuantilesResult,
    VarianceResult,
    estimate_iqr,
    estimate_iqr_lower_bound,
    estimate_mean,
    estimate_quantiles,
    estimate_variance,
)
from repro.multivariate import (
    DiagonalCovarianceResult,
    MultivariateMeanResult,
    estimate_mean_multivariate,
    estimate_variance_diagonal,
)
from repro.empirical import (
    EmpiricalMeanResult,
    EmpiricalQuantileResult,
    RadiusResult,
    RangeResult,
    estimate_empirical_mean,
    estimate_empirical_quantile,
    estimate_radius,
    estimate_range,
)
from repro.exceptions import (
    AssumptionRequiredError,
    BudgetExceededError,
    DomainError,
    InsufficientDataError,
    MechanismError,
    PrivacyParameterError,
    ReproError,
)

#: Kept in sync with ``pyproject.toml``; the CLI's ``--version`` prefers the
#: installed distribution metadata and falls back to this.
__version__ = "0.9.0"

__all__ = [
    "__version__",
    # Universal statistical estimators (the paper's headline contribution).
    "estimate_mean",
    "estimate_variance",
    "estimate_iqr",
    "estimate_quantiles",
    "estimate_iqr_lower_bound",
    "MeanResult",
    "VarianceResult",
    "IQRResult",
    "QuantilesResult",
    "IQRLowerBoundResult",
    # Multivariate extensions (Section 1.2).
    "estimate_mean_multivariate",
    "estimate_variance_diagonal",
    "MultivariateMeanResult",
    "DiagonalCovarianceResult",
    # Empirical estimators over the unbounded integer domain.
    "estimate_radius",
    "estimate_range",
    "estimate_empirical_mean",
    "estimate_empirical_quantile",
    "RadiusResult",
    "RangeResult",
    "EmpiricalMeanResult",
    "EmpiricalQuantileResult",
    # Accounting.
    "PrivacyBudget",
    "PrivacyLedger",
    # Exceptions.
    "ReproError",
    "PrivacyParameterError",
    "BudgetExceededError",
    "MechanismError",
    "InsufficientDataError",
    "DomainError",
    "AssumptionRequiredError",
]
