"""Dataset views: raw data plus lazily-materialised, cached sketches.

The estimator data contract.  A :class:`DatasetView` wraps the array a
dataset was registered with and carries *sketches* — derived representations
(the sorted copy, the sorted absolute values, prefix sums, low-order
moments) that many estimators would otherwise re-derive from scratch on
every cold query.  Estimator specs declare the sketches they exploit via
``EstimatorSpec.needs``; the service registry materialises the union of the
declared needs **once at registration** and every query against the dataset
reuses them.

Compatibility shim
------------------
A view is array-like: ``np.asarray(view)``, ``len(view)``, ``view[i]``,
``view.shape``/``dtype``/``size`` all delegate to the wrapped array, exactly
like :class:`repro.engine.shm.SharedArray`.  A runner that ignores sketches
and simply converts its ``data`` argument keeps working unchanged — and a
plain ``np.ndarray`` handed to a sketch-aware estimator takes the legacy
per-query path.  The contract every fast path must honour: **answers are
bit-for-bit identical whether or not the input carries sketches.**

Sketch vocabulary
-----------------
``sorted``
    ``np.sort(np.asarray(data, dtype=float))`` — the n·log n every quantile
    style estimator used to pay per query.
``sorted_abs``
    ``np.sort(np.abs(np.asarray(data, dtype=float)))`` — the radius
    estimator's representation; composes exactly with grid snapping because
    ``|rint(x/b)| == rint(|x|/b)`` and rounding is monotone.
``prefix_sums``
    ``[0, cumsum(sorted)]`` — range-sum queries over the sorted order.
    Deliberately **not** substituted into existing mean/variance releases:
    ``np.sum``/``np.mean`` use pairwise summation, so a prefix-sum
    reformulation would change float results.  Available for new kinds that
    define their release in terms of it from the start.
``moments``
    ``(n, Σx, Σx²)`` — cheap scalar summaries, same caveat as above.

Sharing
-------
Sketches are ordinary arrays here; the service registry swaps them for
:class:`~repro.engine.shm.SharedArray` segments on ``share=True`` datasets,
and pickling a view then ships only segment names — workers attach instead
of recomputing (see ``repro/engine/shm.py``).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import DomainError

__all__ = ["SKETCH_KINDS", "DatasetView", "as_view", "unwrap", "validate_needs"]

#: Every sketch name an :class:`EstimatorSpec` may declare in ``needs``.
SKETCH_KINDS: Tuple[str, ...] = ("sorted", "sorted_abs", "prefix_sums", "moments")


def validate_needs(needs: Iterable[str], *, where: str = "spec") -> Tuple[str, ...]:
    """Canonicalise a ``needs`` declaration against :data:`SKETCH_KINDS`."""
    cleaned = tuple(str(name) for name in needs)
    unknown = sorted(set(cleaned) - set(SKETCH_KINDS))
    if unknown:
        raise DomainError(
            f"{where}: unknown sketch kind(s) {unknown}; "
            f"expected a subset of {list(SKETCH_KINDS)}"
        )
    duplicates = sorted({name for name in cleaned if cleaned.count(name) > 1})
    if duplicates:
        raise DomainError(f"{where}: duplicate sketch kind(s) {duplicates}")
    return cleaned


class DatasetView:
    """One dataset plus its lazily-materialised sketch cache.

    ``base`` may be a plain ``np.ndarray`` or any array-like (notably a
    :class:`~repro.engine.shm.SharedArray`); sketches likewise.  Thread-safe:
    every cache access holds the view's re-entrant lock, so a sketch is
    materialised exactly once however many threads ask for it concurrently
    (re-entrant because ``prefix_sums`` materialises through ``sorted``).
    """

    __slots__ = ("_base", "_sketches", "_lock")

    def __init__(
        self,
        base: Any,
        sketches: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self._base = base
        self._sketches: Dict[str, Any] = dict(sketches or {})
        unknown = sorted(set(self._sketches) - set(SKETCH_KINDS))
        if unknown:
            raise DomainError(
                f"DatasetView: unknown sketch kind(s) {unknown}; "
                f"expected a subset of {list(SKETCH_KINDS)}"
            )
        self._lock = threading.RLock()

    # -- array-like protocol (the compatibility shim) -----------------------
    def __array__(self, dtype=None, copy=None):
        array = np.asarray(self._base)
        if dtype is not None:
            array = array.astype(dtype, copy=False)
        if copy:
            array = array.copy()
        return array

    def __len__(self) -> int:
        return len(np.asarray(self._base))

    def __getitem__(self, key):
        return np.asarray(self._base)[key]

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(np.asarray(self._base).shape)

    @property
    def dtype(self):
        return np.asarray(self._base).dtype

    @property
    def size(self) -> int:
        return int(np.asarray(self._base).size)

    @property
    def ndim(self) -> int:
        return int(np.asarray(self._base).ndim)

    # -- access -------------------------------------------------------------
    @property
    def base(self) -> Any:
        """The wrapped storage object (ndarray or SharedArray)."""
        return self._base

    @property
    def raw(self) -> np.ndarray:
        """The raw data as an ndarray (zero-copy where the base allows)."""
        return np.asarray(self._base)

    def has(self, name: str) -> bool:
        """Whether sketch ``name`` is already materialised (no computation)."""
        with self._lock:
            return name in self._sketches

    def sketch(self, name: str) -> np.ndarray:
        """Sketch ``name``, materialising and caching it on first use."""
        with self._lock:
            stored = self._sketches.get(name)
            if stored is None:
                stored = self._compute(name)
                self._sketches[name] = stored
        return np.asarray(stored)

    @property
    def sorted_values(self) -> np.ndarray:
        """``np.sort(np.asarray(data, dtype=float))`` — cached."""
        return self.sketch("sorted")

    @property
    def sorted_abs(self) -> np.ndarray:
        """``np.sort(np.abs(np.asarray(data, dtype=float)))`` — cached."""
        return self.sketch("sorted_abs")

    def precompute(self, needs: Iterable[str]) -> "DatasetView":
        """Eagerly materialise every sketch in ``needs`` (registration time)."""
        for name in validate_needs(needs, where="DatasetView.precompute"):
            self.sketch(name)
        return self

    def sketches(self) -> Dict[str, Any]:
        """The materialised sketches as stored (ndarray or SharedArray each).

        A snapshot in :data:`SKETCH_KINDS` order; used by the shared-memory
        hand-off to re-home sketch storage without recomputing anything.
        """
        with self._lock:
            return {
                name: self._sketches[name]
                for name in SKETCH_KINDS
                if name in self._sketches
            }

    # -- accounting ---------------------------------------------------------
    def sketch_footprint(self) -> Dict[str, int]:
        """Bytes held per materialised sketch (stable name order)."""
        return {
            name: int(np.asarray(stored).nbytes)
            for name, stored in self.sketches().items()
        }

    def sketch_nbytes(self) -> int:
        """Total bytes held by materialised sketches."""
        return sum(self.sketch_footprint().values())

    # -- internals ----------------------------------------------------------
    def _compute(self, name: str) -> np.ndarray:
        """Derive sketch ``name`` from the base data.

        Caller must hold ``self._lock.`` (Re-entrant: ``prefix_sums``
        materialises via :meth:`sketch`.)
        """
        data = np.asarray(self._base, dtype=float)
        if name in ("sorted", "sorted_abs", "prefix_sums") and data.ndim != 1:
            raise DomainError(
                f"sketch {name!r} is defined for 1-D datasets, got shape "
                f"{data.shape}"
            )
        if name == "sorted":
            return np.sort(data)
        if name == "sorted_abs":
            return np.sort(np.abs(data))
        if name == "prefix_sums":
            return np.concatenate(([0.0], np.cumsum(self.sketch("sorted"))))
        if name == "moments":
            flat = data.reshape(-1)
            return np.array(
                [float(flat.size), float(np.sum(flat)), float(np.sum(flat * flat))]
            )
        raise DomainError(
            f"unknown sketch kind {name!r}; expected one of {list(SKETCH_KINDS)}"
        )

    # -- pickling (sketches ride along; SharedArrays ship by segment name) --
    def __getstate__(self):
        return {"base": self._base, "sketches": self.sketches()}

    def __setstate__(self, state) -> None:
        self._base = state["base"]
        self._sketches = dict(state["sketches"])
        self._lock = threading.RLock()

    def __repr__(self) -> str:
        shape = "x".join(str(dim) for dim in self.shape)
        names = ",".join(sorted(self.sketches())) or "none"
        return f"DatasetView(shape={shape}, sketches={names})"


def as_view(data: Any, needs: Iterable[str] = ()) -> DatasetView:
    """Wrap ``data`` in a view (idempotent), precomputing ``needs`` if given."""
    view = data if isinstance(data, DatasetView) else DatasetView(data)
    if needs:
        view.precompute(needs)
    return view


def unwrap(data: Any) -> np.ndarray:
    """The raw ndarray behind ``data`` whether or not it is a view."""
    return data.raw if isinstance(data, DatasetView) else np.asarray(data)
