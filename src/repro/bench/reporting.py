"""Plain-text reporting helpers used by every benchmark.

Benchmarks print the same rows/series a paper table or figure would contain.
These helpers keep the formatting consistent (aligned columns, stable float
formatting) so the outputs in ``bench_output.txt`` are easy to diff against
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

__all__ = ["format_table", "format_series", "render_experiment_header"]

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Render an aligned plain-text table."""
    header_cells = [str(h) for h in headers]
    body = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(header_cells), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Cell], ys: Sequence[Cell]) -> str:
    """Render a named (x, y) series as two aligned columns."""
    rows = list(zip(xs, ys))
    return f"series: {name}\n" + format_table(["x", "y"], rows)


def render_experiment_header(experiment_id: str, description: str) -> str:
    """A banner separating experiments in the combined benchmark output."""
    bar = "=" * 78
    return f"\n{bar}\n[{experiment_id}] {description}\n{bar}"


def print_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> None:
    """Convenience wrapper printing :func:`format_table` output."""
    print(format_table(headers, rows))
