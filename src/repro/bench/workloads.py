"""Workload generators for the empirical-setting benchmarks (E1-E5).

The statistical benchmarks draw their data directly from
``repro.distributions``; the empirical benchmarks instead need *datasets with
controlled geometry* — a known width ``gamma(D)``, radius ``rad(D)``, outlier
structure, or the packing structure of the lower bound — so the measured
errors can be compared against the instance-specific bounds of Section 3.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.engine import as_shared, run_batch
from repro.exceptions import DomainError

__all__ = [
    "uniform_integer_dataset",
    "clustered_integer_dataset",
    "adversarial_outlier_dataset",
    "wide_spread_dataset",
    "packing_level_dataset",
    "dataset_batch",
]


def uniform_integer_dataset(
    n: int, width: int, center: int = 0, rng: RngLike = None
) -> np.ndarray:
    """``n`` integers uniform on ``[center - width/2, center + width/2]``.

    The dataset's width is (approximately) ``width`` and its radius is
    ``|center| + width/2``, so radius and width can be controlled separately.
    """
    if n < 1 or width < 0:
        raise DomainError(f"need n >= 1 and width >= 0, got n={n}, width={width}")
    generator = resolve_rng(rng)
    half = width // 2
    return generator.integers(center - half, center + half + 1, size=n).astype(float)


def clustered_integer_dataset(
    n: int, cluster_value: int, spread: int = 1, rng: RngLike = None
) -> np.ndarray:
    """A tight cluster of ``n`` integers around ``cluster_value``.

    Used to verify that the private radius/range adapt to the data's location:
    a cluster far from the origin has ``rad(D) >> gamma(D)``.
    """
    if n < 1 or spread < 0:
        raise DomainError(f"need n >= 1 and spread >= 0, got n={n}, spread={spread}")
    generator = resolve_rng(rng)
    return (cluster_value + generator.integers(-spread, spread + 1, size=n)).astype(float)


def adversarial_outlier_dataset(
    n: int, bulk_width: int, outliers: int, outlier_value: int, rng: RngLike = None
) -> np.ndarray:
    """A bulk of ``n - outliers`` integers in ``[-bulk_width/2, bulk_width/2]`` plus far outliers.

    This is the workload where clipping decisions matter: a good private range
    should cover the bulk and sacrifice the ``outliers`` points at
    ``outlier_value``, paying ``outliers * gamma / n`` bias rather than
    inflating the range (and hence the noise) to cover them.
    """
    if outliers < 0 or outliers > n:
        raise DomainError(f"outliers must lie in [0, n], got {outliers}")
    generator = resolve_rng(rng)
    bulk = uniform_integer_dataset(n - outliers, bulk_width, 0, generator)
    tail = np.full(outliers, float(outlier_value))
    data = np.concatenate([bulk, tail])
    generator.shuffle(data)
    return data


def wide_spread_dataset(n: int, width: int, rng: RngLike = None) -> np.ndarray:
    """Integers spread evenly (deterministic grid plus jitter) across ``width``.

    Guarantees the dataset width is exactly ``width`` (the extreme points are
    pinned), which the E3 benchmark uses to sweep ``gamma(D)`` precisely.
    """
    if n < 2 or width < 1:
        raise DomainError(f"need n >= 2 and width >= 1, got n={n}, width={width}")
    generator = resolve_rng(rng)
    grid = np.linspace(-width / 2.0, width / 2.0, n)
    jitter = generator.integers(-1, 2, size=n)
    data = np.rint(grid) + jitter
    data[0] = -width // 2
    data[-1] = width // 2
    return data.astype(float)


def dataset_batch(
    factory: Callable[[np.random.Generator], np.ndarray],
    trials: int,
    rng: RngLike = None,
    *,
    workers: int = 1,
    pool=None,
    shared: bool = False,
) -> List[np.ndarray]:
    """Materialise one dataset per trial through :func:`repro.engine.run_batch`.

    Each dataset is generated on its own child stream derived from ``rng``, so
    the batch is bit-for-bit identical for any ``workers`` value — the
    engine's determinism contract applied to workload generation.  Used by
    benchmark drivers that want paired designs: E12 pre-builds one dataset per
    trial and reuses it across every ablation setting.

    With ``shared=True`` each dataset is copied once into a
    :class:`~repro.engine.SharedArray` (a ``multiprocessing.shared_memory``
    segment).  Trial functions that close over the returned datasets then
    hand workers only the segment names — every worker maps the same physical
    pages instead of receiving a pickled copy per dispatch, which is what
    makes large-``n`` paired designs affordable on a pool.  The caller owns
    the segments: pass the list to :func:`repro.engine.unlink_all` (or call
    ``.unlink()`` on each array) when done.  The values are numerically
    identical to the ``shared=False`` arrays.
    """
    batch = run_batch(
        lambda index, generator: factory(generator), trials, rng, workers=workers, pool=pool
    )
    datasets = list(batch.results)
    if shared:
        return [as_shared(dataset) for dataset in datasets]
    return datasets


def packing_level_dataset(n: int, level_value: int, changed: int) -> np.ndarray:
    """One dataset of the Theorem 3.4 packing family: ``changed`` copies of ``level_value``, rest zeros."""
    if changed < 0 or changed > n:
        raise DomainError(f"changed must lie in [0, n], got {changed}")
    data = np.zeros(n)
    data[:changed] = float(level_value)
    return data
