"""Table 1 as an executable capability matrix.

Table 1 of the paper summarises which assumptions (A1: mean range, A2:
variance range / moment bound, A3: distribution family) every prior estimator
needs and under which privacy model it operates.  Rather than copying the
table, this module *derives* it from the implemented estimator classes: each
baseline declares its assumption set, and :func:`capability_matrix` also
verifies behaviourally that estimators requiring assumptions refuse to run
without them (they raise :class:`AssumptionRequiredError`) while the universal
estimators run on raw data alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.engine import run_batch
from repro.baselines import (
    BaselineEstimator,
    SampleIQR,
    SampleMean,
    SampleVariance,
    UniversalIQR,
    UniversalMean,
    UniversalVariance,
)
from repro.estimators import iter_estimators
from repro.exceptions import AssumptionRequiredError

__all__ = ["CapabilityRow", "capability_matrix", "default_estimator_suite"]


@dataclass(frozen=True)
class CapabilityRow:
    """One row of the Table-1 capability matrix."""

    name: str
    target: str
    privacy: str
    needs_a1: bool
    needs_a2: bool
    needs_a3: bool
    runs_without_assumptions: bool
    reference: str

    def as_cells(self) -> Tuple[str, str, str, str, str, str, str, str]:
        flag = lambda b: "yes" if b else "no"  # noqa: E731 - tiny formatting helper
        return (
            self.name,
            self.target,
            self.privacy,
            flag(self.needs_a1),
            flag(self.needs_a2),
            flag(self.needs_a3),
            flag(self.runs_without_assumptions),
            self.reference,
        )


def _registered_baseline_classes() -> List[type]:
    """Every private baseline class the estimator-spec registry serves.

    The matrix used to keep its own hardcoded copy of this family; deriving
    it from the registry means any newly registered ``baseline.*`` kind
    appears in Table 1 automatically.
    """
    return [
        spec.extra["baseline_cls"]
        for spec in iter_estimators()
        if spec.extra and "baseline_cls" in spec.extra
    ]


def _bare_factories() -> Tuple[Tuple[str, Callable[[], BaselineEstimator]], ...]:
    """Factories building each estimator *without* assumption parameters.

    Estimators that require assumptions raise AssumptionRequiredError here,
    which is exactly what the matrix records.  The universal adapters and the
    non-private sample references are listed directly (they are the paper's
    own estimators and the matrix's reference rows); the prior-work family is
    drawn from the estimator-spec registry.
    """
    static: Tuple[Tuple[str, Callable[[], BaselineEstimator]], ...] = (
        ("universal_mean", UniversalMean),
        ("universal_variance", UniversalVariance),
        ("universal_iqr", UniversalIQR),
        ("sample_mean", SampleMean),
        ("sample_variance", SampleVariance),
        ("sample_iqr", SampleIQR),
    )
    return static + tuple(
        (cls.name, cls) for cls in _registered_baseline_classes()
    )


#: Resolved at import time (identically in every worker process: the registry
#: is import-populated and iterated in sorted order, so probe indices agree).
_BARE_FACTORIES: Sequence[Tuple[str, Callable[[], BaselineEstimator]]] = (
    _bare_factories()
)


def default_estimator_suite() -> List[BaselineEstimator]:
    """Fully-parameterised instances of every estimator (assumption values supplied).

    Used by comparison benchmarks that need runnable instances.  The
    universal and sample estimators construct bare; every registered baseline
    is instantiated from its spec's example parameters — generous but finite
    assumption values (R = 1e6, sigma in [1e-2, 1e2]) declared next to the
    parameter schema itself.
    """
    suite: List[BaselineEstimator] = [
        UniversalMean(),
        UniversalVariance(),
        UniversalIQR(),
        SampleMean(),
        SampleVariance(),
        SampleIQR(),
    ]
    for spec in iter_estimators():
        if spec.extra and "baseline_cls" in spec.extra:
            suite.append(spec.extra["baseline_cls"](**spec.example_params()))
    return suite


def _probe_row(
    name: str,
    factory: Callable[[], BaselineEstimator],
    data: np.ndarray,
    epsilon: float,
    generator: np.random.Generator,
) -> CapabilityRow:
    """Behaviourally probe one estimator and record its capability row."""
    try:
        estimator = factory()
        estimator.estimate(data, epsilon, generator)
        runs_bare = True
        described = estimator.describe()
    except AssumptionRequiredError:
        runs_bare = False
        # Fall back to class-level metadata for estimators that refuse to
        # construct without their assumption parameters.
        described = None
    if described is None:
        # Fall back to class-level metadata; non-class factories are resolved
        # through a throwaway instance exactly as the estimate() probe did.
        cls = factory if isinstance(factory, type) else type(factory())
        assumptions = cls.assumptions
        return CapabilityRow(
            name=name,
            target=cls.target,
            privacy=cls.privacy,
            needs_a1="A1" in assumptions,
            needs_a2="A2" in assumptions,
            needs_a3="A3" in assumptions,
            runs_without_assumptions=runs_bare,
            reference=cls.reference,
        )
    return CapabilityRow(
        name=name,
        target=described.target,
        privacy=described.privacy,
        needs_a1="A1" in described.assumptions,
        needs_a2="A2" in described.assumptions,
        needs_a3="A3" in described.assumptions,
        runs_without_assumptions=runs_bare,
        reference=described.reference,
    )


def capability_matrix(
    epsilon: float = 1.0,
    sample_size: int = 4096,
    rng: RngLike = None,
    workers: int = 1,
    pool=None,
) -> List[CapabilityRow]:
    """Build the Table-1 capability matrix, verifying behaviour as well as metadata.

    For every estimator the matrix records its declared assumption set and a
    behavioural check: can it be constructed *and* produce an estimate given
    nothing but raw samples and a privacy budget?  Universal and non-private
    estimators succeed; assumption-dependent baselines fail at construction
    with :class:`AssumptionRequiredError`.

    The per-estimator probes are independent, so they fan out through
    :func:`repro.engine.run_batch`: each probe runs on its own child
    generator, and ``workers > 1`` (or a shared ``pool``) parallelises the
    matrix without changing any row.
    """
    generator = resolve_rng(rng)
    data = generator.normal(0.0, 1.0, size=sample_size)

    def probe(index: int, probe_generator: np.random.Generator) -> CapabilityRow:
        name, factory = _BARE_FACTORIES[index]
        return _probe_row(name, factory, data, epsilon, probe_generator)

    batch = run_batch(probe, len(_BARE_FACTORIES), generator, workers=workers, pool=pool)
    return list(batch.results)
