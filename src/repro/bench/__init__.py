"""Benchmark harness: workload generators, capability matrix and reporting."""

from repro.bench.capability import CapabilityRow, capability_matrix, default_estimator_suite
from repro.bench.reporting import format_series, format_table, render_experiment_header
from repro.bench.workloads import (
    adversarial_outlier_dataset,
    clustered_integer_dataset,
    dataset_batch,
    packing_level_dataset,
    uniform_integer_dataset,
    wide_spread_dataset,
)

__all__ = [
    "format_table",
    "format_series",
    "render_experiment_header",
    "CapabilityRow",
    "capability_matrix",
    "default_estimator_suite",
    "uniform_integer_dataset",
    "clustered_integer_dataset",
    "adversarial_outlier_dataset",
    "wide_spread_dataset",
    "packing_level_dataset",
    "dataset_batch",
]
