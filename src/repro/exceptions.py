"""Exception hierarchy for the ``repro`` library.

Every error deliberately raised by the library derives from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and friends)
propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PrivacyParameterError",
    "BudgetExceededError",
    "MechanismError",
    "InsufficientDataError",
    "DomainError",
    "AssumptionRequiredError",
    "EngineError",
    "CoordinatorUnavailableError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PrivacyParameterError(ReproError, ValueError):
    """An ``epsilon``, ``delta`` or ``beta`` parameter is outside its valid range."""


class BudgetExceededError(ReproError):
    """A mechanism attempted to spend more privacy budget than is available."""


class MechanismError(ReproError):
    """A mechanism could not produce an output.

    Raised, for example, when the Sparse Vector Technique exhausts its safety
    cap without any query crossing the threshold, which means the input is
    outside the regime for which the algorithm has a utility guarantee.
    """


class InsufficientDataError(ReproError, ValueError):
    """The dataset is too small for the requested estimator."""


class DomainError(ReproError, ValueError):
    """A value, bucket size or domain description is invalid."""


class EngineError(ReproError, RuntimeError):
    """The parallel execution layer failed structurally.

    Raised when a pool worker dies unexpectedly, when a closed pool is
    reused, or when trial results cannot cross the process boundary.  Never
    raised for ordinary trial failures — those propagate as the trial's own
    exception or are captured as ``TrialFailure`` records.
    """


class CoordinatorUnavailableError(ReproError, ConnectionError):
    """The cluster budget coordinator cannot be reached.

    Raised by the coordinator RPC client when the transport fails (connection
    refused, reset, or timed out) after its single reconnect attempt.  Shard
    front-ends map this to a structured ``coordinator_unavailable`` answer:
    a joint budget whose owner is unreachable must refuse to admit spend, not
    fall back to a shard-local ledger that would silently double-count.
    """


class AssumptionRequiredError(ReproError, ValueError):
    """A baseline estimator was invoked without the a-priori bound it requires.

    The universal estimators of the paper never raise this; it exists so the
    Table-1 capability benchmark can demonstrate which estimators depend on
    assumptions A1 (mean range), A2 (variance range) or A3 (distribution
    family).
    """
