"""Coordinate-wise universal private mean for d-dimensional data.

Each coordinate is an arbitrary unknown univariate distribution, so the
univariate universal estimator (Algorithm 8) applies directly; basic
composition across the d coordinates gives pure ε-DP overall when each
coordinate spends ``eps / d``.  The resulting privacy error per coordinate is
``~d/(eps n)`` — the paper (Section 1.2) points out that obtaining the optimal
``d``-dependence under pure DP is open even with assumptions, so this
coordinate-wise construction is the honest state of the art for a universal
pure-DP multivariate mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.core.mean import MeanResult, estimate_mean
from repro.exceptions import DomainError, InsufficientDataError

__all__ = ["MultivariateMeanResult", "estimate_mean_multivariate"]


@dataclass(frozen=True)
class MultivariateMeanResult:
    """Private estimate of a d-dimensional mean vector.

    Attributes
    ----------
    mean:
        The ε-DP estimate of the mean vector (length d).
    per_coordinate:
        The univariate :class:`MeanResult` of every coordinate (diagnostics).
    epsilon_per_coordinate:
        Budget spent on each coordinate (``epsilon / d``).
    sample_mean:
        *Non-private diagnostic*: the exact sample mean vector.
    """

    mean: np.ndarray
    per_coordinate: Tuple[MeanResult, ...]
    epsilon_per_coordinate: float
    sample_mean: np.ndarray

    @property
    def dimension(self) -> int:
        """Number of coordinates."""
        return int(self.mean.size)


def _validate_matrix(values: Sequence[Sequence[float]]) -> np.ndarray:
    data = np.asarray(values, dtype=float)
    if data.ndim != 2:
        raise DomainError(
            f"multivariate estimators expect an (n, d) array, got shape {data.shape}"
        )
    n, d = data.shape
    if d < 1:
        raise DomainError("the data must have at least one coordinate")
    if n < 8:
        raise InsufficientDataError(f"need at least 8 rows, got {n}")
    return data


def estimate_mean_multivariate(
    values: Sequence[Sequence[float]],
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "multivariate_mean",
) -> MultivariateMeanResult:
    """Universal ε-DP estimator of a d-dimensional mean (coordinate-wise).

    Parameters
    ----------
    values:
        An ``(n, d)`` array of i.i.d. rows.
    epsilon, beta:
        Total budget (split evenly across coordinates by basic composition)
        and failure probability (union-bounded across coordinates).
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = _validate_matrix(values)
    generator = resolve_rng(rng)
    n, d = data.shape

    epsilon_each = epsilon / d
    beta_each = beta / d

    per_coordinate = []
    for j in range(d):
        per_coordinate.append(
            estimate_mean(
                data[:, j],
                epsilon_each,
                beta_each,
                generator,
                ledger=ledger,
                label=f"{label}.coord{j}",
            )
        )

    return MultivariateMeanResult(
        mean=np.array([r.mean for r in per_coordinate]),
        per_coordinate=tuple(per_coordinate),
        epsilon_per_coordinate=epsilon_each,
        sample_mean=np.mean(data, axis=0),
    )
