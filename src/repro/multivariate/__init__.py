"""Multivariate extensions (Section 1.2 of the paper).

The paper notes that the univariate pure-DP estimators extend to d dimensions
by running them coordinate-wise with the Laplace mechanism (the approach of
[HLY21] with Gaussian noise replaced by Laplace noise), at the cost of a
``d/(eps n)`` rather than the conjectured-optimal ``sqrt(d)``-type privacy
term — achieving the optimal d-dependence under pure DP is left open.  This
subpackage implements that coordinate-wise construction for the mean and the
diagonal of the covariance, so downstream users get a working multivariate API
and the E16 benchmark can measure the d-dependence explicitly.
"""

from repro.multivariate.mean import MultivariateMeanResult, estimate_mean_multivariate
from repro.multivariate.scale import DiagonalCovarianceResult, estimate_variance_diagonal

__all__ = [
    "MultivariateMeanResult",
    "estimate_mean_multivariate",
    "DiagonalCovarianceResult",
    "estimate_variance_diagonal",
]
