"""Coordinate-wise universal private scale estimation (diagonal covariance).

Full private covariance estimation without boundedness assumptions under pure
DP is open (the works cited in Section 1.2 either assume bounded norms or
relax to approximate DP).  What *is* available universally is the diagonal:
each coordinate's variance is a univariate problem solved by Algorithm 9, and
basic composition across coordinates gives pure ε-DP for the whole diagonal.
The result is the private analogue of per-feature variance/scale reports used
for feature normalisation pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.core.variance import VarianceResult, estimate_variance
from repro.multivariate.mean import _validate_matrix
from repro.exceptions import InsufficientDataError

__all__ = ["DiagonalCovarianceResult", "estimate_variance_diagonal"]


@dataclass(frozen=True)
class DiagonalCovarianceResult:
    """Private estimate of the per-coordinate variances of d-dimensional data.

    Attributes
    ----------
    variances:
        The ε-DP estimates of the d coordinate variances.
    per_coordinate:
        Full univariate :class:`VarianceResult` for each coordinate.
    epsilon_per_coordinate:
        Budget spent per coordinate.
    sample_variances:
        *Non-private diagnostic*: exact per-coordinate sample variances.
    """

    variances: np.ndarray
    per_coordinate: Tuple[VarianceResult, ...]
    epsilon_per_coordinate: float
    sample_variances: np.ndarray

    @property
    def dimension(self) -> int:
        """Number of coordinates."""
        return int(self.variances.size)


def estimate_variance_diagonal(
    values: Sequence[Sequence[float]],
    epsilon: float,
    beta: float = 1.0 / 3.0,
    rng: RngLike = None,
    *,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "variance_diagonal",
) -> DiagonalCovarianceResult:
    """Universal ε-DP estimator of the per-coordinate variances of ``(n, d)`` data."""
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = _validate_matrix(values)
    if data.shape[0] < 16:
        raise InsufficientDataError(
            f"estimate_variance_diagonal needs at least 16 rows, got {data.shape[0]}"
        )
    generator = resolve_rng(rng)
    n, d = data.shape

    epsilon_each = epsilon / d
    beta_each = beta / d

    per_coordinate = []
    for j in range(d):
        per_coordinate.append(
            estimate_variance(
                data[:, j],
                epsilon_each,
                beta_each,
                generator,
                ledger=ledger,
                label=f"{label}.coord{j}",
            )
        )

    return DiagonalCovarianceResult(
        variances=np.array([r.variance for r in per_coordinate]),
        per_coordinate=tuple(per_coordinate),
        epsilon_per_coordinate=epsilon_each,
        sample_variances=np.var(data, axis=0),
    )
