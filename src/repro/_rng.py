"""Random-number-generator plumbing shared across the library.

All stochastic code paths accept an optional ``rng`` argument and route it
through :func:`resolve_rng`.  This keeps experiments reproducible (pass a
seeded :class:`numpy.random.Generator`) while staying convenient for casual
use (pass nothing and a fresh generator is created).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RngLike", "resolve_rng", "spawn_seeds", "spawn_rngs"]

#: Anything acceptable as a source of randomness.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def resolve_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` (create a fresh unseeded generator), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (returned
        unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, an int seed, a SeedSequence or a numpy Generator; "
        f"got {type(rng).__name__}"
    )


def spawn_seeds(rng: RngLike, count: int) -> np.ndarray:
    """Draw ``count`` independent child seeds from ``rng``.

    The seeds are drawn in one vectorised call, so the result depends only on
    the state of ``rng`` and on ``count`` — never on how (or where) the child
    generators are later consumed.  :mod:`repro.engine` sends these integer
    seeds to worker processes instead of pickling generator objects; trial
    ``i`` always runs on ``np.random.default_rng(int(seeds[i]))`` regardless
    of which worker executes it, which is what makes parallel execution
    bit-for-bit reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = resolve_rng(rng)
    return base.integers(0, 2**63 - 1, size=count, dtype=np.int64)


def spawn_rngs(rng: RngLike, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Convenience wrapper over :func:`spawn_seeds` that materialises the child
    generators eagerly.  :mod:`repro.engine` consumes the integer seeds
    directly (they cross process boundaries; generators do not), but the
    streams are identical either way: trial ``i`` always runs on
    ``np.random.default_rng(int(spawn_seeds(rng, count)[i]))``, so a failure
    (or any extra stream consumption) in one trial cannot shift the
    randomness of any other trial.
    """
    return [np.random.default_rng(int(seed)) for seed in spawn_seeds(rng, count)]
