"""The Laplace mechanism (Lemma 2.3) and its tail bound.

The Laplace mechanism adds noise drawn from ``Lap(GS/epsilon)`` to a query
with global sensitivity ``GS``; the result satisfies pure ε-DP.  The tail
bound ``Pr[|Lap(s)| > s * log(1/beta)] <= beta`` is used repeatedly in the
paper's utility proofs and is exposed here so that analysis code and tests can
reference a single implementation.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_epsilon
from repro.exceptions import PrivacyParameterError

__all__ = ["laplace_noise", "laplace_mechanism", "laplace_tail_bound"]


def laplace_noise(scale: float, rng: RngLike = None, size: Optional[int] = None):
    """Draw Laplace noise with the given ``scale`` (mean zero).

    Parameters
    ----------
    scale:
        The Laplace scale parameter ``b`` (standard deviation ``b * sqrt(2)``).
        A scale of exactly zero returns zero noise, which is convenient for
        "infinite epsilon" sanity checks in tests.
    rng:
        Seed or generator; see :func:`repro._rng.resolve_rng`.
    size:
        When given, return an array of that many i.i.d. draws.
    """
    if scale < 0 or not math.isfinite(scale):
        raise PrivacyParameterError(f"Laplace scale must be finite and non-negative, got {scale}")
    if scale == 0.0:
        return 0.0 if size is None else np.zeros(size)
    generator = resolve_rng(rng)
    return generator.laplace(loc=0.0, scale=scale, size=size)


def laplace_mechanism(
    value: float,
    sensitivity: float,
    epsilon: float,
    rng: RngLike = None,
    *,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "laplace",
) -> float:
    """Release ``value`` under ε-DP by adding ``Lap(sensitivity / epsilon)`` noise.

    Parameters
    ----------
    value:
        The exact (non-private) query answer.
    sensitivity:
        Global sensitivity of the query over neighbouring datasets.
    epsilon:
        Privacy budget spent by this single release.
    ledger:
        Optional :class:`PrivacyLedger` to record the spend.
    label:
        Label stored in the ledger entry.
    """
    epsilon = validate_epsilon(epsilon)
    if sensitivity < 0 or not math.isfinite(sensitivity):
        raise PrivacyParameterError(
            f"sensitivity must be finite and non-negative, got {sensitivity}"
        )
    if ledger is not None:
        ledger.charge(label, epsilon)
    noise = laplace_noise(sensitivity / epsilon, rng)
    return float(value) + float(noise)


def laplace_tail_bound(scale: float, beta: float) -> float:
    """Return ``t`` such that ``Pr[|Lap(scale)| > t] <= beta``.

    For the Laplace distribution the exact tail is
    ``Pr[|Lap(s)| > t] = exp(-t / s)``, so ``t = s * log(1 / beta)``.
    """
    if not 0.0 < beta < 1.0:
        raise PrivacyParameterError(f"beta must lie in (0, 1), got {beta}")
    if scale < 0:
        raise PrivacyParameterError(f"scale must be non-negative, got {scale}")
    return scale * math.log(1.0 / beta)
