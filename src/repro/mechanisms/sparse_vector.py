"""The Sparse Vector Technique (Algorithm 1 of the paper).

Given a (possibly infinite) stream of sensitivity-1 queries ``Q_1, Q_2, ...``
and a threshold ``T``, SVT privately returns the index of the first query
whose (noisy) answer exceeds the (noisy) threshold, spending ``epsilon``
regardless of how many queries were inspected.  The paper relies on two
complementary utility statements:

* Lemma 2.5 ("will not stop too early"): if the first ``k1`` queries are at
  most ``T - (8/eps) log(2 k1 / beta)``, SVT passes them all w.p. ``1 - beta``.
* Lemma 2.6 ("will stop in time"): if some query ``k2`` reaches
  ``T + (6/eps) log(2/beta)``, SVT stops by ``k2`` and the returned query is
  at least ``T - (6/eps) log(2 k2 / beta)`` w.p. ``1 - beta``.

The query stream is supplied as an *iterable of callables* evaluated lazily so
that the doubling-scale counting queries used by the radius estimator never
materialise more queries than SVT actually inspects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_epsilon
from repro.exceptions import MechanismError

__all__ = ["SVTResult", "sparse_vector"]

#: Default safety cap on the number of queries SVT inspects.  The counting
#: query streams used in this library grow their scale geometrically, so 4096
#: queries already cover scales up to 2**4094 — far beyond any float input.
DEFAULT_MAX_QUERIES = 4096


@dataclass(frozen=True)
class SVTResult:
    """Outcome of a Sparse Vector run.

    Attributes
    ----------
    index:
        1-based index of the first query whose noisy answer exceeded the noisy
        threshold.
    noisy_threshold:
        The privatized threshold actually used for all comparisons.
    queries_evaluated:
        How many queries were evaluated before stopping (equals ``index``).
    """

    index: int
    noisy_threshold: float
    queries_evaluated: int


def sparse_vector(
    threshold: float,
    epsilon: float,
    queries: Iterable[Callable[[], float]],
    rng: RngLike = None,
    *,
    max_queries: int = DEFAULT_MAX_QUERIES,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "sparse_vector",
) -> SVTResult:
    """Run Algorithm 1 (SVT) over a lazy stream of sensitivity-1 queries.

    Parameters
    ----------
    threshold:
        The public threshold ``T``.
    epsilon:
        Total privacy budget of the run; the threshold receives ``Lap(2/eps)``
        noise and each query receives ``Lap(4/eps)`` noise as in Algorithm 1.
    queries:
        Iterable of zero-argument callables; ``queries[i]()`` must return the
        exact answer of the ``(i+1)``-th sensitivity-1 query.
    max_queries:
        Safety cap; exceeding it raises :class:`MechanismError` because the
        stream was expected to cross the threshold long before.
    ledger:
        Optional ledger that records a single spend of ``epsilon``.

    Returns
    -------
    SVTResult
        The (1-based) stopping index together with diagnostics.
    """
    epsilon = validate_epsilon(epsilon)
    if not math.isfinite(threshold):
        raise MechanismError(f"threshold must be finite, got {threshold}")
    if max_queries < 1:
        raise ValueError(f"max_queries must be at least 1, got {max_queries}")
    generator = resolve_rng(rng)
    if ledger is not None:
        ledger.charge(label, epsilon)

    noisy_threshold = threshold + generator.laplace(scale=2.0 / epsilon)
    evaluated = 0
    for index, query in enumerate(queries, start=1):
        if index > max_queries:
            break
        evaluated = index
        answer = float(query())
        noisy_answer = answer + generator.laplace(scale=4.0 / epsilon)
        if noisy_answer > noisy_threshold:
            return SVTResult(
                index=index,
                noisy_threshold=noisy_threshold,
                queries_evaluated=evaluated,
            )
    raise MechanismError(
        f"SVT did not stop within {min(evaluated, max_queries)} queries; the query stream "
        "never crossed the threshold (the input is outside the supported regime)"
    )
