"""Report-noisy-max over a vector of counting queries.

Adding independent ``Lap(2/eps)`` noise to each count (each with sensitivity 1
under add/remove-one neighbouring datasets, and at most 2 under replace-one)
and reporting the argmax satisfies ε-DP.  The baselines of [KV18] and [KSU20]
use this primitive to locate the heaviest histogram bin; it lives here so the
baselines share one implementation and so it can be tested in isolation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_epsilon
from repro.exceptions import DomainError

__all__ = ["report_noisy_max"]


def report_noisy_max(
    counts: Sequence[float],
    epsilon: float,
    rng: RngLike = None,
    *,
    sensitivity: float = 2.0,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "report_noisy_max",
) -> int:
    """Return the index of the (noisily) largest count under ε-DP.

    Parameters
    ----------
    counts:
        The exact counts (or any sensitivity-bounded scores).
    epsilon:
        Privacy budget of the release.
    sensitivity:
        Per-entry sensitivity of the scores; the default of 2 covers histogram
        counts under replace-one neighbouring datasets.
    """
    epsilon = validate_epsilon(epsilon)
    values = np.asarray(counts, dtype=float)
    if values.size == 0:
        raise DomainError("report_noisy_max needs at least one count")
    if sensitivity <= 0:
        raise DomainError(f"sensitivity must be positive, got {sensitivity}")
    generator = resolve_rng(rng)
    if ledger is not None:
        ledger.charge(label, epsilon)
    noisy = values + generator.laplace(scale=sensitivity / epsilon, size=values.size)
    return int(np.argmax(noisy))
