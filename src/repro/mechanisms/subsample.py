"""Privacy amplification by sub-sampling (Theorem 2.4, [BBG18]).

Running an ``eps_inner``-DP mechanism on a uniformly random subset containing
an ``eta`` fraction of the records satisfies
``log(1 + eta * (exp(eps_inner) - 1))``-DP with respect to the full dataset.
``EstimateMean`` and ``EstimateVariance`` use the inverse direction: given the
target budget for the full dataset, compute the (larger) budget the inner
mechanism may spend on the sub-sample.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import validate_epsilon
from repro.exceptions import PrivacyParameterError

__all__ = ["subsample", "amplified_epsilon", "inner_epsilon_for_target"]


def _validate_rate(eta: float) -> float:
    eta = float(eta)
    if not 0.0 < eta <= 1.0:
        raise PrivacyParameterError(f"sampling rate eta must lie in (0, 1], got {eta}")
    return eta


def amplified_epsilon(inner_epsilon: float, eta: float) -> float:
    """Effective epsilon of an ``inner_epsilon``-DP mechanism run on an ``eta`` sub-sample."""
    inner_epsilon = validate_epsilon(inner_epsilon, name="inner_epsilon")
    eta = _validate_rate(eta)
    return math.log(1.0 + eta * (math.exp(inner_epsilon) - 1.0))


def inner_epsilon_for_target(target_epsilon: float, eta: float) -> float:
    """Largest inner epsilon whose amplified value is exactly ``target_epsilon``.

    Inverts :func:`amplified_epsilon`:
    ``inner = log((exp(target) - 1) / eta + 1)``.  For ``eta = target_epsilon``
    (the paper's choice of sub-sample size ``m = eps * n``) this reproduces the
    expression ``eps' = log((e^eps - 1) / eps + 1)`` from Algorithms 8 and 9.
    """
    target_epsilon = validate_epsilon(target_epsilon, name="target_epsilon")
    eta = _validate_rate(eta)
    return math.log((math.exp(target_epsilon) - 1.0) / eta + 1.0)


def subsample(
    values: Sequence[float],
    size: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw ``size`` values from ``values`` uniformly without replacement.

    The sub-sample size is clamped to ``[1, len(values)]`` so the amplification
    bookkeeping of the callers stays valid even for tiny datasets.
    """
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise PrivacyParameterError("cannot sub-sample an empty dataset")
    size = int(min(max(size, 1), data.size))
    generator = resolve_rng(rng)
    indices = generator.choice(data.size, size=size, replace=False)
    return data[indices]
