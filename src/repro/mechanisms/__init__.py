"""Differentially private primitive mechanisms used throughout the library."""

from repro.mechanisms.clipped_mean import clip_values, clipped_mean, clipped_mean_mechanism
from repro.mechanisms.exponential import (
    exponential_mechanism_over_intervals,
    finite_domain_quantile,
    inverse_sensitivity_quantile,
)
from repro.mechanisms.laplace import laplace_mechanism, laplace_noise, laplace_tail_bound
from repro.mechanisms.noisy_max import report_noisy_max
from repro.mechanisms.sparse_vector import SVTResult, sparse_vector
from repro.mechanisms.subsample import amplified_epsilon, inner_epsilon_for_target, subsample

__all__ = [
    "laplace_noise",
    "laplace_mechanism",
    "laplace_tail_bound",
    "report_noisy_max",
    "sparse_vector",
    "SVTResult",
    "finite_domain_quantile",
    "inverse_sensitivity_quantile",
    "exponential_mechanism_over_intervals",
    "clip_values",
    "clipped_mean",
    "clipped_mean_mechanism",
    "subsample",
    "amplified_epsilon",
    "inner_epsilon_for_target",
]
