"""Inverse-sensitivity quantile release (Section 2.5, Algorithm 2).

The inverse sensitivity mechanism (INV) instantiates the exponential mechanism
with the *path length* score ``len(Q, D, y)`` — the minimum number of records
of ``D`` that must change for ``y`` to become the exact query answer.  For a
quantile query over a finite ordered domain, the path length of a candidate
``y`` is the number of data points separating ``y`` from the target order
statistic, so the score is piecewise constant between consecutive data values.
This lets us sample from the exponential mechanism in ``O(n log n)`` time by
working over at most ``2n + 1`` integer intervals instead of enumerating the
(potentially astronomically large) output domain.

:func:`finite_domain_quantile` implements Algorithm 2 including the rank
clamping near 1 and ``n`` and enjoys the rank-error guarantee of Lemma 2.8:
with probability ``1 - beta`` the returned value lies between the order
statistics of ranks ``tau ± (4/eps) log(|X| / beta)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.exceptions import DomainError, InsufficientDataError

__all__ = [
    "QuantileInterval",
    "build_quantile_intervals",
    "exponential_mechanism_over_intervals",
    "inverse_sensitivity_quantile",
    "finite_domain_quantile",
    "rank_clamp_width",
    "clamped_rank",
]


@dataclass(frozen=True)
class QuantileInterval:
    """A maximal run of integer candidates sharing one path-length score.

    Attributes
    ----------
    low, high:
        Inclusive integer endpoints of the run (``low <= high``).
    score:
        The path length ``len(Q, D, y)`` shared by every ``y`` in the run.
    """

    low: int
    high: int
    score: int

    @property
    def size(self) -> int:
        """Number of integer candidates contained in the run."""
        return self.high - self.low + 1


def _path_length(count_below: int, count_above: int, n: int, tau: int) -> int:
    """Minimum number of record changes for a candidate to become the tau-quantile.

    ``count_below`` is the number of data points strictly below the candidate
    and ``count_above`` the number strictly above it.  To make the candidate
    the ``tau``-th smallest value we may need to push down points from below
    (when more than ``tau - 1`` lie below) or pull up points from above (when
    fewer than ``tau`` lie at or below it).
    """
    deficit_low = count_below - (tau - 1)
    deficit_high = tau - (n - count_above)
    return max(0, deficit_low, deficit_high)


def _quantile_interval_arrays(
    sorted_values: Sequence[int],
    tau: int,
    domain_low: int,
    domain_high: int,
    *,
    assume_sorted: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised core of :func:`build_quantile_intervals`.

    Returns the ``(lows, highs, scores)`` arrays of the constant-score runs
    tiling ``[domain_low, domain_high]`` without materialising per-interval
    Python objects — this is the per-trial hot path of every quantile call.

    ``assume_sorted=True`` is the sketch fast path: the caller guarantees the
    input is already ascending (e.g. it was derived monotonically from a
    :class:`~repro.dataview.DatasetView` sketch), so the defensive re-sort is
    skipped and the distinct values plus the strict-below / strict-above
    counts are read directly off the run boundaries instead of re-searching
    the data.  Both branches produce bit-for-bit identical arrays; the plain
    branch is the reference.
    """
    if domain_high < domain_low:
        raise DomainError(
            f"empty candidate domain: [{domain_low}, {domain_high}]"
        )
    if assume_sorted:
        values = np.asarray(sorted_values, dtype=np.int64)
    else:
        values = np.sort(np.asarray(sorted_values, dtype=np.int64))
    n = int(values.size)
    if n and (int(values[0]) < domain_low or int(values[-1]) > domain_high):
        raise DomainError(
            f"data values [{int(values[0])}, {int(values[-1])}] lie outside the "
            f"candidate domain [{domain_low}, {domain_high}]"
        )
    counts_below: Optional[np.ndarray] = None
    counts_above: Optional[np.ndarray] = None
    if assume_sorted and n:
        # Run boundaries of the sorted data: starts[i] is the index of the
        # first occurrence of the i-th distinct value — i.e. the number of
        # elements strictly below it — and ends[i] the number of elements at
        # or below it.  These are exactly what the reference branch recovers
        # later via searchsorted, so the scores come out identical.
        starts = np.flatnonzero(
            np.concatenate(([True], values[1:] != values[:-1]))
        ).astype(np.int64)
        unique = values[starts]
        ends = np.concatenate((starts[1:], [np.int64(n)]))
    else:
        starts = ends = None
        unique = np.unique(values)

    # Candidate segments: for each distinct data value v, the gap of integers
    # strictly before it and the singleton {v}; finally the gap after the last
    # value.  The gap before unique[i] starts one past unique[i-1] (or at
    # domain_low for the first), so lows/highs interleave as
    # [gap_0, {v_0}, gap_1, {v_1}, ...] with empty gaps masked out.
    if unique.size:
        k = int(unique.size)
        gap_lows = np.empty(k, dtype=np.int64)
        gap_lows[0] = domain_low
        gap_lows[1:] = unique[:-1] + 1
        lows = np.empty(2 * k, dtype=np.int64)
        highs = np.empty(2 * k, dtype=np.int64)
        lows[0::2] = gap_lows
        highs[0::2] = unique - 1
        lows[1::2] = unique
        highs[1::2] = unique
        keep = lows <= highs
        if starts is not None and ends is not None:
            # Strictly-below is starts[i] for both the gap before unique[i]
            # and the singleton {unique[i]}; strictly-above is n - starts[i]
            # over the gap (everything >= unique[i]) and n - ends[i] at the
            # singleton (everything > unique[i]).  Integer indexing beats
            # boolean masking ~4x at this size and selects the same rows.
            below_full = np.repeat(starts, 2)
            above_full = np.empty(2 * k, dtype=np.int64)
            above_full[0::2] = n - starts
            above_full[1::2] = n - ends
            kept = np.flatnonzero(keep)
            counts_below = below_full[kept]
            counts_above = above_full[kept]
            lows = lows[kept]
            highs = highs[kept]
        else:
            lows = lows[keep]
            highs = highs[keep]
        if int(unique[-1]) < domain_high:
            lows = np.append(lows, unique[-1] + 1)
            highs = np.append(highs, np.int64(domain_high))
            if counts_below is not None and counts_above is not None:
                counts_below = np.append(counts_below, np.int64(n))
                counts_above = np.append(counts_above, np.int64(0))
    else:
        lows = np.asarray([domain_low], dtype=np.int64)
        highs = np.asarray([domain_high], dtype=np.int64)

    if counts_below is None or counts_above is None:
        counts_below = np.searchsorted(values, lows, side="left")
        counts_above = n - np.searchsorted(values, highs, side="right")
    scores = np.maximum(
        0, np.maximum(counts_below - (tau - 1), tau - (n - counts_above))
    )
    return lows, highs, scores


def build_quantile_intervals(
    sorted_values: Sequence[int],
    tau: int,
    domain_low: int,
    domain_high: int,
) -> list[QuantileInterval]:
    """Partition ``[domain_low, domain_high]`` into constant-score integer runs.

    Parameters
    ----------
    sorted_values:
        Data values sorted ascending; every value must already lie inside the
        domain.
    tau:
        Target rank (1-based).
    domain_low, domain_high:
        Inclusive integer bounds of the output domain.
    """
    lows, highs, scores = _quantile_interval_arrays(
        sorted_values, tau, domain_low, domain_high
    )
    return [
        QuantileInterval(low=int(lo), high=int(hi), score=int(sc))
        for lo, hi, sc in zip(lows.tolist(), highs.tolist(), scores.tolist())
    ]


def _sample_over_interval_arrays(
    lows: np.ndarray,
    highs: np.ndarray,
    scores: np.ndarray,
    epsilon: float,
    generator: np.random.Generator,
) -> int:
    """Two-stage exponential-mechanism sampling over ``(lows, highs, scores)`` runs.

    The interval is picked by cumulative-sum inversion
    (``searchsorted(cumsum(weights), u * total)``) rather than
    ``Generator.choice(p=...)``: ``choice`` renormalises and *validates* the
    probability vector, raising ``ValueError: probabilities do not sum to 1``
    whenever float rounding across many intervals leaves the sum off by more
    than its tolerance.  Inversion needs no normalisation at all, so it cannot
    flake at large interval counts.
    """
    sizes = highs - lows + 1
    if np.any(sizes < 1):
        bad = int(np.argmax(sizes < 1))
        raise DomainError(
            f"malformed interval [{int(lows[bad])}, {int(highs[bad])}]: high < low"
        )
    log_weights = np.log(sizes.astype(float)) - 0.5 * epsilon * scores
    log_weights -= log_weights.max()
    weights = np.exp(log_weights)
    cumulative = np.cumsum(weights)
    total = float(cumulative[-1])
    draw = generator.random() * total
    index = int(np.searchsorted(cumulative, draw, side="right"))
    index = min(index, int(lows.size) - 1)

    low = int(lows[index])
    size = int(sizes[index])
    if size == 1:
        return low
    # The run length fits comfortably in a Python int; sample uniformly in it.
    offset = int(generator.integers(0, size))
    return low + offset


def exponential_mechanism_over_intervals(
    intervals: Sequence[QuantileInterval],
    epsilon: float,
    rng: RngLike = None,
) -> int:
    """Sample an integer with probability proportional to ``size * exp(-eps * score / 2)``.

    This is the exponential mechanism with utility ``-score`` (sensitivity 1)
    over the union of the intervals, using the standard two-stage sampling:
    first pick an interval by its total weight (via cumulative-sum inversion,
    which is immune to the float-rounding validation failures of
    ``Generator.choice``), then a uniform integer inside it.  Weights are
    handled in log-space so that very long intervals and very large scores
    cannot overflow or underflow.
    """
    if not intervals:
        raise DomainError("cannot run the exponential mechanism over zero intervals")
    epsilon = validate_epsilon(epsilon)
    generator = resolve_rng(rng)

    lows = np.asarray([iv.low for iv in intervals], dtype=np.int64)
    highs = np.asarray([iv.high for iv in intervals], dtype=np.int64)
    scores = np.asarray([iv.score for iv in intervals], dtype=np.int64)
    return _sample_over_interval_arrays(lows, highs, scores, epsilon, generator)


def rank_clamp_width(domain_size: int, epsilon: float, beta: float) -> float:
    """The rank clamp ``(2 / eps) * log(|X| / beta)`` used by Algorithm 2."""
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    if domain_size < 1:
        raise DomainError(f"domain size must be at least 1, got {domain_size}")
    # Compute log(|X| / beta) as log|X| - log(beta) so that astronomically
    # large integer domains (the radius can be a huge power of two) never
    # overflow an intermediate float division.
    return (2.0 / epsilon) * (math.log(domain_size) - math.log(beta))


def clamped_rank(tau: int, n: int, clamp: float) -> int:
    """Clamp the requested rank ``tau`` into ``[clamp, n - clamp]`` symmetrically.

    Algorithm 2 keeps the target rank at least ``clamp`` away from both
    extremes because INV can behave arbitrarily badly there.  When the clamp
    window ``[clamp, n - clamp]`` is empty (``2 * clamp > n``, i.e. the
    dataset is too small relative to the domain for *any* rank to be safe),
    every requested rank collapses to the median rank — the unique
    branch-order-independent choice equidistant from both unsafe extremes.
    (At exactly ``2 * clamp == n`` the window is the single point ``n / 2``,
    which the ordinary clamp branches already produce.)  The historical
    implementation applied the low clamp first and never re-checked the high
    one, so in the empty-window case the result silently depended on branch
    order (all ranks landed at ``n``).
    """
    if 2.0 * clamp > n:
        target = (n + 1) / 2.0
    elif tau <= clamp:
        target = clamp
    elif tau >= n - clamp:
        target = n - clamp
    else:
        target = float(tau)
    return int(min(max(round(target), 1), n))


def inverse_sensitivity_quantile(
    sorted_values: Sequence[int],
    tau: int,
    domain_low: int,
    domain_high: int,
    epsilon: float,
    rng: RngLike = None,
    *,
    assume_sorted: bool = False,
) -> int:
    """Run INV for the ``tau``-th order statistic over an integer domain.

    This is the raw mechanism without Algorithm 2's rank clamping; callers
    that need the Lemma 2.8 guarantee should use :func:`finite_domain_quantile`.
    ``assume_sorted=True`` promises ``sorted_values`` is already ascending
    (sketch fast path; identical draws either way).
    """
    epsilon = validate_epsilon(epsilon)
    generator = resolve_rng(rng)
    lows, highs, scores = _quantile_interval_arrays(
        sorted_values, tau, domain_low, domain_high, assume_sorted=assume_sorted
    )
    return _sample_over_interval_arrays(lows, highs, scores, epsilon, generator)


def finite_domain_quantile(
    values: Sequence[float],
    tau: int,
    domain_low: int,
    domain_high: int,
    epsilon: float,
    beta: float,
    rng: RngLike = None,
    *,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "finite_domain_quantile",
    assume_sorted: bool = False,
) -> int:
    """Algorithm 2: privately estimate the ``tau``-th smallest value of ``values``.

    Parameters
    ----------
    values:
        Integer data (need not be sorted unless ``assume_sorted=True``, the
        sketch fast path — the caller then guarantees ascending order and
        the defensive sorts are skipped with bit-for-bit identical results);
        every value must lie inside ``[domain_low, domain_high]``.
    tau:
        Requested rank, ``1 <= tau <= n``.  Ranks too close to the extremes
        are clamped to ``(2/eps) log(|X|/beta)`` away from them exactly as in
        Algorithm 2, because INV can behave arbitrarily badly there.
    domain_low, domain_high:
        Inclusive bounds of the finite ordered domain ``X``.
    epsilon, beta:
        Privacy budget and failure probability.

    Returns
    -------
    int
        A domain element within rank error ``(4/eps) log(|X|/beta)`` of the
        true ``tau``-th smallest value, with probability at least ``1 - beta``.
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    if assume_sorted:
        data = np.asarray(values, dtype=float)
    else:
        data = np.sort(np.asarray(values, dtype=float))
    n = data.size
    if n == 0:
        raise InsufficientDataError("cannot estimate a quantile of an empty dataset")
    if not 1 <= tau <= n:
        raise DomainError(f"tau must lie in [1, {n}], got {tau}")

    domain_size = int(domain_high) - int(domain_low) + 1
    clamp = rank_clamp_width(domain_size, epsilon, beta)
    tau_prime = clamped_rank(tau, int(n), clamp)

    if ledger is not None:
        ledger.charge(label, epsilon)

    # rint is monotone, so an already-sorted float input stays sorted after
    # snapping and the fast interval construction remains valid.
    sorted_ints = np.rint(data).astype(np.int64)
    return inverse_sensitivity_quantile(
        sorted_ints,
        tau_prime,
        int(domain_low),
        int(domain_high),
        epsilon,
        rng,
        assume_sorted=assume_sorted,
    )
