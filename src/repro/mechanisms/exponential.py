"""Inverse-sensitivity quantile release (Section 2.5, Algorithm 2).

The inverse sensitivity mechanism (INV) instantiates the exponential mechanism
with the *path length* score ``len(Q, D, y)`` — the minimum number of records
of ``D`` that must change for ``y`` to become the exact query answer.  For a
quantile query over a finite ordered domain, the path length of a candidate
``y`` is the number of data points separating ``y`` from the target order
statistic, so the score is piecewise constant between consecutive data values.
This lets us sample from the exponential mechanism in ``O(n log n)`` time by
working over at most ``2n + 1`` integer intervals instead of enumerating the
(potentially astronomically large) output domain.

:func:`finite_domain_quantile` implements Algorithm 2 including the rank
clamping near 1 and ``n`` and enjoys the rank-error guarantee of Lemma 2.8:
with probability ``1 - beta`` the returned value lies between the order
statistics of ranks ``tau ± (4/eps) log(|X| / beta)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._rng import RngLike, resolve_rng
from repro.accounting import PrivacyLedger, validate_beta, validate_epsilon
from repro.exceptions import DomainError, InsufficientDataError

__all__ = [
    "QuantileInterval",
    "build_quantile_intervals",
    "exponential_mechanism_over_intervals",
    "inverse_sensitivity_quantile",
    "finite_domain_quantile",
    "rank_clamp_width",
]


@dataclass(frozen=True)
class QuantileInterval:
    """A maximal run of integer candidates sharing one path-length score.

    Attributes
    ----------
    low, high:
        Inclusive integer endpoints of the run (``low <= high``).
    score:
        The path length ``len(Q, D, y)`` shared by every ``y`` in the run.
    """

    low: int
    high: int
    score: int

    @property
    def size(self) -> int:
        """Number of integer candidates contained in the run."""
        return self.high - self.low + 1


def _path_length(count_below: int, count_above: int, n: int, tau: int) -> int:
    """Minimum number of record changes for a candidate to become the tau-quantile.

    ``count_below`` is the number of data points strictly below the candidate
    and ``count_above`` the number strictly above it.  To make the candidate
    the ``tau``-th smallest value we may need to push down points from below
    (when more than ``tau - 1`` lie below) or pull up points from above (when
    fewer than ``tau`` lie at or below it).
    """
    deficit_low = count_below - (tau - 1)
    deficit_high = tau - (n - count_above)
    return max(0, deficit_low, deficit_high)


def build_quantile_intervals(
    sorted_values: Sequence[int],
    tau: int,
    domain_low: int,
    domain_high: int,
) -> list[QuantileInterval]:
    """Partition ``[domain_low, domain_high]`` into constant-score integer runs.

    Parameters
    ----------
    sorted_values:
        Data values sorted ascending; every value must already lie inside the
        domain.
    tau:
        Target rank (1-based).
    domain_low, domain_high:
        Inclusive integer bounds of the output domain.
    """
    if domain_high < domain_low:
        raise DomainError(
            f"empty candidate domain: [{domain_low}, {domain_high}]"
        )
    values = np.sort(np.asarray(sorted_values, dtype=np.int64))
    n = int(values.size)
    if n and (int(values[0]) < domain_low or int(values[-1]) > domain_high):
        raise DomainError(
            f"data values [{int(values[0])}, {int(values[-1])}] lie outside the "
            f"candidate domain [{domain_low}, {domain_high}]"
        )
    unique = np.unique(values)

    # Candidate segments: for each distinct data value v, the gap of integers
    # strictly before it and the singleton {v}; finally the gap after the last
    # value.  All boundary ranks are obtained with two vectorised searches.
    segment_lows: list[int] = []
    segment_highs: list[int] = []
    cursor = int(domain_low)
    for v in unique.tolist():
        if cursor <= v - 1:
            segment_lows.append(cursor)
            segment_highs.append(v - 1)
        segment_lows.append(v)
        segment_highs.append(v)
        cursor = v + 1
    if cursor <= domain_high:
        segment_lows.append(cursor)
        segment_highs.append(int(domain_high))

    lows = np.asarray(segment_lows, dtype=np.int64)
    highs = np.asarray(segment_highs, dtype=np.int64)
    counts_below = np.searchsorted(values, lows, side="left")
    counts_above = n - np.searchsorted(values, highs, side="right")
    scores = np.maximum(
        0, np.maximum(counts_below - (tau - 1), tau - (n - counts_above))
    )

    return [
        QuantileInterval(low=int(lo), high=int(hi), score=int(sc))
        for lo, hi, sc in zip(segment_lows, segment_highs, scores.tolist())
    ]


def exponential_mechanism_over_intervals(
    intervals: Sequence[QuantileInterval],
    epsilon: float,
    rng: RngLike = None,
) -> int:
    """Sample an integer with probability proportional to ``size * exp(-eps * score / 2)``.

    This is the exponential mechanism with utility ``-score`` (sensitivity 1)
    over the union of the intervals, using the standard two-stage sampling:
    first pick an interval by its total weight, then a uniform integer inside
    it.  Weights are handled in log-space so that very long intervals and very
    large scores cannot overflow or underflow.
    """
    if not intervals:
        raise DomainError("cannot run the exponential mechanism over zero intervals")
    epsilon = validate_epsilon(epsilon)
    generator = resolve_rng(rng)

    log_weights = np.array(
        [math.log(iv.size) - 0.5 * epsilon * iv.score for iv in intervals],
        dtype=float,
    )
    log_weights -= log_weights.max()
    weights = np.exp(log_weights)
    probabilities = weights / weights.sum()
    index = int(generator.choice(len(intervals), p=probabilities))
    chosen = intervals[index]
    if chosen.size == 1:
        return chosen.low
    # The run length fits comfortably in a Python int; sample uniformly in it.
    offset = int(generator.integers(0, chosen.size))
    return chosen.low + offset


def rank_clamp_width(domain_size: int, epsilon: float, beta: float) -> float:
    """The rank clamp ``(2 / eps) * log(|X| / beta)`` used by Algorithm 2."""
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    if domain_size < 1:
        raise DomainError(f"domain size must be at least 1, got {domain_size}")
    # Compute log(|X| / beta) as log|X| - log(beta) so that astronomically
    # large integer domains (the radius can be a huge power of two) never
    # overflow an intermediate float division.
    return (2.0 / epsilon) * (math.log(domain_size) - math.log(beta))


def inverse_sensitivity_quantile(
    sorted_values: Sequence[int],
    tau: int,
    domain_low: int,
    domain_high: int,
    epsilon: float,
    rng: RngLike = None,
) -> int:
    """Run INV for the ``tau``-th order statistic over an integer domain.

    This is the raw mechanism without Algorithm 2's rank clamping; callers
    that need the Lemma 2.8 guarantee should use :func:`finite_domain_quantile`.
    """
    intervals = build_quantile_intervals(sorted_values, tau, domain_low, domain_high)
    return exponential_mechanism_over_intervals(intervals, epsilon, rng)


def finite_domain_quantile(
    values: Sequence[float],
    tau: int,
    domain_low: int,
    domain_high: int,
    epsilon: float,
    beta: float,
    rng: RngLike = None,
    *,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "finite_domain_quantile",
) -> int:
    """Algorithm 2: privately estimate the ``tau``-th smallest value of ``values``.

    Parameters
    ----------
    values:
        Integer data (need not be sorted); every value must lie inside
        ``[domain_low, domain_high]``.
    tau:
        Requested rank, ``1 <= tau <= n``.  Ranks too close to the extremes
        are clamped to ``(2/eps) log(|X|/beta)`` away from them exactly as in
        Algorithm 2, because INV can behave arbitrarily badly there.
    domain_low, domain_high:
        Inclusive bounds of the finite ordered domain ``X``.
    epsilon, beta:
        Privacy budget and failure probability.

    Returns
    -------
    int
        A domain element within rank error ``(4/eps) log(|X|/beta)`` of the
        true ``tau``-th smallest value, with probability at least ``1 - beta``.
    """
    epsilon = validate_epsilon(epsilon)
    beta = validate_beta(beta)
    data = np.sort(np.asarray(values, dtype=float))
    n = data.size
    if n == 0:
        raise InsufficientDataError("cannot estimate a quantile of an empty dataset")
    if not 1 <= tau <= n:
        raise DomainError(f"tau must lie in [1, {n}], got {tau}")

    domain_size = int(domain_high) - int(domain_low) + 1
    clamp = rank_clamp_width(domain_size, epsilon, beta)
    tau_prime = float(tau)
    if tau_prime <= clamp:
        tau_prime = clamp
    elif tau_prime >= n - clamp:
        tau_prime = n - clamp
    tau_prime = int(min(max(round(tau_prime), 1), n))

    if ledger is not None:
        ledger.charge(label, epsilon)

    sorted_ints = np.rint(data).astype(np.int64)
    return inverse_sensitivity_quantile(
        sorted_ints, tau_prime, int(domain_low), int(domain_high), epsilon, rng
    )
