"""The clipped mean estimator (Section 2.6).

Clipping every value into a public interval ``[l, r]`` bounds the global
sensitivity of the empirical mean by ``(r - l) / n``, so releasing
``ClippedMean(D, [l, r]) + Lap((r - l) / (eps * n))`` satisfies ε-DP.  The
composite estimators in this library choose ``[l, r]`` privately first and
then invoke these helpers.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro._rng import RngLike
from repro.accounting import PrivacyLedger, validate_epsilon
from repro.exceptions import DomainError, InsufficientDataError
from repro.mechanisms.laplace import laplace_mechanism

__all__ = ["clip_values", "clipped_mean", "clipped_mean_mechanism", "count_outside"]


def _validate_interval(low: float, high: float) -> Tuple[float, float]:
    low = float(low)
    high = float(high)
    if not (math.isfinite(low) and math.isfinite(high)):
        raise DomainError(f"clipping interval must be finite, got [{low}, {high}]")
    if high < low:
        raise DomainError(f"clipping interval is empty: [{low}, {high}]")
    return low, high


def clip_values(values: Sequence[float], low: float, high: float) -> np.ndarray:
    """Return ``values`` clipped into ``[low, high]`` as a new array."""
    low, high = _validate_interval(low, high)
    return np.clip(np.asarray(values, dtype=float), low, high)


def count_outside(values: Sequence[float], low: float, high: float) -> int:
    """Number of values strictly outside ``[low, high]`` (the clipped outliers)."""
    low, high = _validate_interval(low, high)
    data = np.asarray(values, dtype=float)
    return int(np.count_nonzero((data < low) | (data > high)))


def clipped_mean(values: Sequence[float], low: float, high: float) -> float:
    """The (non-private) mean of ``values`` after clipping into ``[low, high]``."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("cannot take the mean of an empty dataset")
    return float(np.mean(clip_values(data, low, high)))


def clipped_mean_mechanism(
    values: Sequence[float],
    low: float,
    high: float,
    epsilon: float,
    rng: RngLike = None,
    *,
    ledger: Optional[PrivacyLedger] = None,
    label: str = "clipped_mean",
) -> float:
    """Release the clipped mean under ε-DP via the Laplace mechanism.

    The sensitivity of the clipped mean over the (fixed, public) interval
    ``[low, high]`` is ``(high - low) / n``.
    """
    epsilon = validate_epsilon(epsilon)
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("cannot take the mean of an empty dataset")
    low, high = _validate_interval(low, high)
    exact = clipped_mean(data, low, high)
    sensitivity = (high - low) / data.size
    return laplace_mechanism(
        exact, sensitivity, epsilon, rng, ledger=ledger, label=label
    )
