"""Small non-private dataset helpers (Section 2.1 notation).

These compute the exact quantities ``rad(D)``, ``gamma(D)`` and ``R(D)`` used
throughout the paper.  They are *not* differentially private; they exist for
the internal bookkeeping of the mechanisms (which privatize them before
release) and for the analysis/benchmark code that measures utility.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import InsufficientDataError

__all__ = ["sort_values", "dataset_radius", "dataset_width", "dataset_range"]


def sort_values(values: Sequence[float]) -> np.ndarray:
    """Return ``values`` as a sorted float array, rejecting empty input."""
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        raise InsufficientDataError("dataset is empty")
    return data


def dataset_radius(values: Sequence[float]) -> float:
    """``rad(D) = max_i |X_i|``."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("dataset is empty")
    return float(np.max(np.abs(data)))


def dataset_width(values: Sequence[float]) -> float:
    """``gamma(D) = X_n - X_1`` (the width of the dataset)."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("dataset is empty")
    return float(np.max(data) - np.min(data))


def dataset_range(values: Sequence[float]) -> Tuple[float, float]:
    """``R(D) = [X_1, X_n]`` as a ``(low, high)`` tuple."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise InsufficientDataError("dataset is empty")
    return float(np.min(data)), float(np.max(data))
