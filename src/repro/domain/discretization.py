"""Discretization of the real line onto the integer grid ``b * Z`` (Section 3.5).

The empirical estimators of Section 3 are defined over the unbounded integer
domain Z.  To apply them to real data the paper discretizes R with a bucket
size ``b``: every value ``x`` is mapped to the nearest multiple of ``b``.
Discretization introduces an additive error of at most ``b / 2 <= b`` to every
value and converts widths/radii by a factor of ``1 / b``, which is where the
extra ``+ 3b`` / ``+ 6b`` terms in Theorems 3.6-3.9 come from.

:class:`Grid` encapsulates the bucket size together with the forward
(``to_grid``) and backward (``from_grid``) maps so that callers never multiply
by the wrong factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.exceptions import DomainError

__all__ = ["Grid"]

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class Grid:
    """The integer grid ``{k * bucket_size : k in Z}``.

    Parameters
    ----------
    bucket_size:
        The spacing ``b`` between grid points; must be positive and finite.
        ``Grid.unit()`` gives the identity grid (``b = 1``) used when the data
        are already integers.
    """

    bucket_size: float

    def __post_init__(self) -> None:
        b = float(self.bucket_size)
        if not math.isfinite(b) or b <= 0.0:
            raise DomainError(f"bucket_size must be positive and finite, got {self.bucket_size!r}")
        object.__setattr__(self, "bucket_size", b)

    @staticmethod
    def unit() -> "Grid":
        """The grid with bucket size 1 (integer data passes through unchanged)."""
        return Grid(1.0)

    #: Largest grid index magnitude representable without risking int64
    #: overflow during downstream arithmetic (shifts, doubling searches).
    _MAX_INDEX = float(2**62)

    def to_grid(self, values: ArrayLike) -> np.ndarray:
        """Map real values to integer grid indices (nearest multiple of ``b``).

        Raises
        ------
        DomainError
            If any value is non-finite or its grid index would overflow int64
            (i.e. the bucket size is far too small for the data's magnitude).
        """
        data = np.asarray(values, dtype=float)
        if data.size and not np.all(np.isfinite(data)):
            raise DomainError("cannot discretize non-finite values")
        scaled = data / self.bucket_size
        if scaled.size and float(np.max(np.abs(scaled))) > self._MAX_INDEX:
            raise DomainError(
                f"bucket size {self.bucket_size:g} is too small for data of magnitude "
                f"{float(np.max(np.abs(data))):g}; grid indices would overflow"
            )
        return np.rint(scaled).astype(np.int64)

    def to_grid_scalar(self, value: float) -> int:
        """Map a single real value to its grid index."""
        if not math.isfinite(value):
            raise DomainError(f"cannot discretize non-finite value {value!r}")
        return int(round(value / self.bucket_size))

    def from_grid(self, indices: ArrayLike) -> np.ndarray:
        """Map grid indices back to real values."""
        return np.asarray(indices, dtype=float) * self.bucket_size

    def from_grid_scalar(self, index: float) -> float:
        """Map a single grid index back to a real value."""
        return float(index) * self.bucket_size

    def round_trip_error_bound(self) -> float:
        """Maximum additive error introduced by one discretization round trip."""
        return self.bucket_size / 2.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Grid(bucket_size={self.bucket_size:g})"
