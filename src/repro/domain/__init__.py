"""Domain handling: discretization of R onto an integer grid and dataset helpers."""

from repro.domain.dataset import dataset_radius, dataset_range, dataset_width, sort_values
from repro.domain.discretization import Grid

__all__ = [
    "Grid",
    "sort_values",
    "dataset_radius",
    "dataset_width",
    "dataset_range",
]
