"""``repro.client`` — a stdlib HTTP client for the serving API.

One small class, :class:`ServiceClient`, wrapping :mod:`urllib` so every
consumer of a running ``repro serve`` instance — the ``repro query`` /
``repro admin`` CLI commands, the quickstart examples, the CI drive script,
tests — speaks the v1 wire envelope through the same code path instead of
five hand-rolled ``urllib`` snippets.

Every JSON call returns ``(status_code, document)`` with the *parsed* body,
including for non-2xx responses: the serving API answers refusals and
rejections with structured JSON documents (``error.code`` et al.), so an
HTTP error status is data, not an exception.  Only transport-level failures
(connection refused, timeout, non-JSON body) raise
:class:`~repro.exceptions.DomainError`.

>>> client = ServiceClient("http://127.0.0.1:8080")       # doctest: +SKIP
>>> code, doc = client.query("salaries", "mean", epsilon=0.5)  # doctest: +SKIP
>>> code, doc["status"]                                   # doctest: +SKIP
(200, 'ok')
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.exceptions import DomainError

__all__ = ["ServiceClient"]


class ServiceClient:
    """A client for one running serving instance.

    Parameters
    ----------
    url:
        Base URL of the service (e.g. ``http://127.0.0.1:8080``).
    timeout:
        Per-request timeout in seconds.
    token:
        Admin shared secret; sent as ``Authorization: Bearer`` on every
        ``/admin`` call (the server also accepts ``X-Admin-Token``).
    analyst:
        Default analyst name attached to queries that don't name one.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        token: Optional[str] = None,
        analyst: Optional[str] = None,
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.token = token
        self.analyst = analyst

    # -- transport ----------------------------------------------------------
    def call(
        self,
        path: str,
        payload: Optional[Any] = None,
        *,
        method: Optional[str] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One JSON round-trip: ``(HTTP status, parsed document)``.

        ``method`` defaults to POST when a payload is given (or the path is
        under ``/admin``), GET otherwise.  Structured non-2xx bodies are
        returned, not raised.
        """
        status, body = self._request(path, payload, method, headers)
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise DomainError(
                f"service returned HTTP {status} with a non-JSON body "
                f"for {path}"
            ) from None
        return status, document

    def call_text(self, path: str) -> Tuple[int, str]:
        """GET a plain-text resource (``/metrics``): ``(status, text)``."""
        status, body = self._request(path, None, "GET", None)
        return status, body.decode("utf-8")

    def _request(
        self,
        path: str,
        payload: Optional[Any],
        method: Optional[str],
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, bytes]:
        import urllib.error
        import urllib.request

        if method is None:
            method = "GET" if payload is None else "POST"
        data = None
        headers = {}
        if method == "POST":
            data = b"" if payload is None else json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.token is not None and path.startswith("/admin"):
            headers["Authorization"] = f"Bearer {self.token}"
        if extra_headers:
            headers.update(extra_headers)
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            # Refusals/rejections arrive as structured JSON bodies: data.
            return exc.code, exc.read()
        except (urllib.error.URLError, OSError) as exc:
            raise DomainError(
                f"cannot reach service at {self.url}: {exc}"
            ) from exc

    # -- data plane ---------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.call("/health")[1]

    def stats(self) -> Dict[str, Any]:
        """The ``GET /datasets`` document: budgets, cache, front-end counters."""
        return self.call("/datasets")[1]

    def kinds(self) -> Dict[str, Any]:
        return self.call("/kinds")[1]

    def metrics(self) -> str:
        """The Prometheus text exposition from ``GET /metrics``."""
        status, text = self.call_text("/metrics")
        if status != 200:
            raise DomainError(f"GET /metrics answered HTTP {status}")
        return text

    def query(
        self,
        dataset: str,
        kind: str,
        *,
        epsilon: float,
        beta: Optional[float] = None,
        params: Optional[Mapping[str, Any]] = None,
        analyst: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Submit one query; returns ``(status, answer document)``.

        Kind-specific parameters (quantile ``levels``, baseline bounds, ...)
        go in ``params`` — the only spelling the wire accepts now that the
        legacy top-level ``levels`` alias is gone.  ``trace_id`` propagates a
        caller-minted id via ``X-Repro-Trace-Id``; the server echoes the
        effective id in the answer's ``trace`` field when tracing is on.
        """
        payload: Dict[str, Any] = {
            "dataset": dataset,
            "kind": kind,
            "epsilon": epsilon,
        }
        if beta is not None:
            payload["beta"] = beta
        if params:
            payload["params"] = dict(params)
        analyst = analyst if analyst is not None else self.analyst
        if analyst is not None:
            payload["analyst"] = analyst
        headers = {"X-Repro-Trace-Id": trace_id} if trace_id else None
        return self.call("/query", payload, headers=headers)

    def query_batch(
        self,
        queries: Sequence[Mapping[str, Any]],
        *,
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Submit a batch; per-entry outcomes live in ``document["answers"]``."""
        headers = {"X-Repro-Trace-Id": trace_id} if trace_id else None
        return self.call("/query", {"queries": list(queries)}, headers=headers)

    # -- observability ------------------------------------------------------
    def traces(self) -> Tuple[int, Dict[str, Any]]:
        """The recent-traces document from ``GET /debug/traces``.

        404 with ``error.code == "tracing_disabled"`` when the server has no
        trace ring configured.
        """
        return self.call("/debug/traces")

    def trace(self, trace_id: str) -> Tuple[int, Dict[str, Any]]:
        """One recorded trace by id (404 when unknown or already evicted)."""
        return self.call(f"/debug/traces/{trace_id}")

    def register(
        self,
        name: str,
        values: Sequence[float],
        budget: float,
        *,
        analyst_budgets: Optional[Mapping[str, float]] = None,
        share: bool = False,
    ) -> Tuple[int, Dict[str, Any]]:
        payload: Dict[str, Any] = {
            "name": name,
            "values": list(values),
            "budget": budget,
            "share": share,
        }
        if analyst_budgets:
            payload["analyst_budgets"] = dict(analyst_budgets)
        return self.call("/datasets", payload)

    # -- control plane ------------------------------------------------------
    def admin_state(self) -> Tuple[int, Dict[str, Any]]:
        return self.call("/admin/state")

    def admin_reload(
        self, config: Optional[Mapping[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Hot-reload: re-read the booted config file, or apply an inline one."""
        payload = None if config is None else {"config": dict(config)}
        return self.call("/admin/reload", payload, method="POST")

    def admin_drain(
        self, dataset: str, draining: bool = True
    ) -> Tuple[int, Dict[str, Any]]:
        return self.call(
            "/admin/drain", {"dataset": dataset, "draining": draining}
        )
