"""Privacy budget objects and parameter validation.

The composite algorithms in the paper (Algorithms 4, 5, 6, 8, 9, 10) split a
single ``epsilon`` across their sub-mechanisms using fixed fractions given in
the pseudo-code.  :class:`PrivacyBudget` makes those splits explicit and
verifiable: a budget can be divided into parts whose total never exceeds the
parent, which is exactly the guarantee basic composition (Lemma 2.2) needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import PrivacyParameterError

__all__ = ["validate_epsilon", "validate_beta", "PrivacyBudget"]


def validate_epsilon(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate a pure-DP privacy parameter and return it as a float.

    The paper works in the regime ``0 < epsilon < 1`` but nothing in the
    algorithms breaks for larger finite epsilon, so only positivity and
    finiteness are enforced.
    """
    value = float(epsilon)
    if not math.isfinite(value) or value <= 0.0:
        raise PrivacyParameterError(f"{name} must be a positive finite number, got {epsilon!r}")
    return value


def validate_beta(beta: float, *, name: str = "beta") -> float:
    """Validate a failure-probability parameter ``beta`` in (0, 1)."""
    value = float(beta)
    if not math.isfinite(value) or not 0.0 < value < 1.0:
        raise PrivacyParameterError(f"{name} must lie strictly between 0 and 1, got {beta!r}")
    return value


@dataclass(frozen=True)
class PrivacyBudget:
    """A pure-DP privacy budget with an associated failure probability.

    Attributes
    ----------
    epsilon:
        The ε of ε-differential privacy that the holder may spend in total.
    beta:
        The failure probability allotted to utility statements (this is *not*
        the δ of approximate DP; all estimators in this library satisfy pure
        ε-DP with δ = 0).
    """

    epsilon: float
    beta: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "epsilon", validate_epsilon(self.epsilon))
        object.__setattr__(self, "beta", validate_beta(self.beta))

    def split(self, *fractions: float) -> tuple["PrivacyBudget", ...]:
        """Split the epsilon budget into parts proportional to ``fractions``.

        The fractions must be positive and sum to at most 1 (up to floating
        point slack); each part inherits the full ``beta`` because the paper's
        analyses already union-bound the failure events of sub-mechanisms
        against explicitly chosen beta fractions.
        """
        if not fractions:
            raise ValueError("at least one fraction is required")
        if any(f <= 0 for f in fractions):
            raise PrivacyParameterError(f"fractions must be positive, got {fractions}")
        total = sum(fractions)
        if total > 1.0 + 1e-9:
            raise PrivacyParameterError(
                f"fractions sum to {total}, which exceeds the available budget"
            )
        return tuple(PrivacyBudget(self.epsilon * f, self.beta) for f in fractions)

    def scaled(self, factor: float) -> "PrivacyBudget":
        """Return a budget with epsilon scaled by ``factor`` (0 < factor <= 1)."""
        if not 0.0 < factor <= 1.0 + 1e-12:
            raise PrivacyParameterError(f"scale factor must lie in (0, 1], got {factor}")
        return PrivacyBudget(self.epsilon * factor, self.beta)

    @staticmethod
    def compose(parts: Sequence["PrivacyBudget"]) -> "PrivacyBudget":
        """Basic composition (Lemma 2.2): epsilons add, betas add (capped below 1)."""
        if not parts:
            raise ValueError("cannot compose an empty sequence of budgets")
        epsilon = sum(p.epsilon for p in parts)
        beta = min(sum(p.beta for p in parts), 1.0 - 1e-12)
        return PrivacyBudget(epsilon, beta)
