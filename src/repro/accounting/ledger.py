"""A ledger recording the privacy budget spent by each sub-mechanism.

Every composite estimator accepts an optional :class:`PrivacyLedger`.  When
one is provided, each primitive mechanism records the epsilon it consumed
(together with a human-readable label), which lets tests and benchmarks verify
that the total spend of, say, ``EstimateMean`` never exceeds the epsilon the
caller asked for — the executable counterpart of basic composition.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.accounting.budget import validate_epsilon
from repro.exceptions import BudgetExceededError

__all__ = ["BudgetSpend", "PrivacyLedger"]


@dataclass(frozen=True)
class BudgetSpend:
    """A single privacy expenditure."""

    label: str
    epsilon: float
    #: Epsilon charged against the dataset the caller holds.  For mechanisms
    #: run on a sub-sample this is the amplified (smaller) value; ``epsilon``
    #: then records the budget given to the inner mechanism.
    charged_epsilon: Optional[float] = None

    @property
    def effective_epsilon(self) -> float:
        """The epsilon that counts toward the caller-visible total."""
        return self.charged_epsilon if self.charged_epsilon is not None else self.epsilon


@dataclass
class PrivacyLedger:
    """Accumulates :class:`BudgetSpend` records under an optional cap.

    Parameters
    ----------
    capacity:
        When given, :meth:`charge` raises :class:`BudgetExceededError` if the
        running total would exceed this epsilon (a small relative tolerance is
        allowed for floating-point round-off in the paper's fractional splits).

    The ledger is safe for concurrent use: the check-and-append in
    :meth:`charge` happens atomically under an internal lock, so two threads
    charging one capped ledger can never jointly overshoot the capacity, and
    :attr:`total_epsilon` always reflects a consistent prefix of the spends.
    """

    capacity: Optional[float] = None
    spends: List[BudgetSpend] = field(default_factory=list)
    _tolerance: float = 1e-9
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    #: Running total, maintained by charge() so total_epsilon stays O(1) for
    #: long-lived ledgers (the service commits one spend per release).
    _total: float = field(default=0.0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.capacity is not None:
            self.capacity = validate_epsilon(self.capacity, name="capacity")
        self._total = sum(s.effective_epsilon for s in self.spends)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks cannot cross process boundaries
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__["_lock"] = threading.RLock()

    def charge(
        self,
        label: str,
        epsilon: float,
        *,
        charged_epsilon: Optional[float] = None,
    ) -> BudgetSpend:
        """Record a spend of ``epsilon`` attributed to ``label`` (atomically)."""
        epsilon = validate_epsilon(epsilon)
        if charged_epsilon is not None:
            charged_epsilon = validate_epsilon(charged_epsilon, name="charged_epsilon")
        spend = BudgetSpend(label=label, epsilon=epsilon, charged_epsilon=charged_epsilon)
        with self._lock:
            new_total = self._total + spend.effective_epsilon
            if self.capacity is not None and new_total > self.capacity * (1.0 + self._tolerance):
                raise BudgetExceededError(
                    f"charging {spend.effective_epsilon:.6g} for {label!r} would bring the total "
                    f"to {new_total:.6g}, exceeding the capacity {self.capacity:.6g}"
                )
            self.spends.append(spend)
            self._total = new_total
        return spend

    @property
    def total_epsilon(self) -> float:
        """Total effective epsilon recorded so far."""
        with self._lock:
            return self._total

    @property
    def remaining(self) -> Optional[float]:
        """Remaining budget under the cap, or ``None`` when uncapped."""
        if self.capacity is None:
            return None
        return max(self.capacity - self.total_epsilon, 0.0)

    def __iter__(self) -> Iterator[BudgetSpend]:
        # Iterate over a snapshot: handing out a live iterator would race
        # concurrent charge() appends after the lock is released.
        with self._lock:
            return iter(list(self.spends))

    def __len__(self) -> int:
        with self._lock:
            return len(self.spends)

    def summary(self) -> str:
        """Return a short human-readable description of all spends."""
        with self._lock:
            lines = [f"PrivacyLedger(total={self.total_epsilon:.6g}, capacity={self.capacity})"]
            for spend in self.spends:
                lines.append(f"  - {spend.label}: {spend.effective_epsilon:.6g}")
        return "\n".join(lines)
