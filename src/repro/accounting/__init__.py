"""Privacy accounting: parameter validation, budgets and spend ledgers."""

from repro.accounting.budget import (
    PrivacyBudget,
    validate_beta,
    validate_epsilon,
)
from repro.accounting.ledger import BudgetSpend, PrivacyLedger

__all__ = [
    "PrivacyBudget",
    "PrivacyLedger",
    "BudgetSpend",
    "validate_epsilon",
    "validate_beta",
]
