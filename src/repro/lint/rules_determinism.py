"""REP001 — no global-RNG calls: generators must be threaded explicitly.

The engine's determinism contract (bit-for-bit ``workers=1 == workers=N``,
see ROADMAP's `repro.engine` section) holds because every stochastic code
path receives its :class:`numpy.random.Generator` explicitly, derived
up-front from the caller's seed via :mod:`repro._rng`.  A single call to the
*global* NumPy or stdlib RNG — or an argless ``default_rng()`` /
``SeedSequence()`` pulling fresh OS entropy — silently breaks that parity in
ways no fixed-seed test can catch.

The rule flags:

* ``np.random.<fn>(...)`` module-level functions (``normal``, ``seed``,
  ``shuffle``, ...) — these share NumPy's hidden global state;
* argless ``np.random.default_rng()`` / ``np.random.SeedSequence()`` and the
  argless bit-generator constructors (``PCG64()``, ...) — fresh entropy;
  seeded calls (``default_rng(seed)``) are fine;
* any use of the stdlib :mod:`random` module functions (they share one
  hidden ``Random`` instance) and argless ``random.Random()``.

Whitelisted entropy-seeding site: ``repro/_rng.py`` — the one sanctioned
place unseeded generators are created (``resolve_rng(None)``).  Anywhere
else, either accept an ``rng`` argument and resolve it through
:func:`repro._rng.resolve_rng` / :func:`repro._rng.spawn_seeds`, or suppress
with ``# repro: ignore[REP001]`` plus a comment justifying the entropy draw.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding

__all__ = ["GlobalRngRule"]

#: numpy.random attributes that are classes taking explicit state, not
#: global-RNG entry points; calling them with arguments is always fine.
_ENTROPY_CONSTRUCTORS = {
    "default_rng",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}
#: numpy.random attributes that never touch entropy on their own.
_SAFE_ATTRIBUTES = {"Generator", "BitGenerator", "RandomState"}


class GlobalRngRule(Rule):
    rule_id = "REP001"
    description = (
        "no global-RNG calls: thread numpy Generators explicitly via "
        "repro._rng; fresh entropy only in whitelisted seeding sites"
    )

    def __init__(self, allowed_files: Tuple[str, ...] = ("repro/_rng.py",)):
        self.allowed_files = tuple(allowed_files)

    # -- import resolution --------------------------------------------------
    @staticmethod
    def _import_maps(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
        """(module aliases, from-imported names) for numpy / stdlib random.

        ``aliases`` maps a local name to the module it denotes (``np`` ->
        ``numpy``); ``members`` maps a bare local name to the dotted origin
        (``default_rng`` -> ``numpy.random.default_rng``).
        """
        aliases: Dict[str, str] = {}
        members: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("numpy", "random") or alias.name.startswith(
                        ("numpy.", "random.")
                    ):
                        if alias.asname:
                            aliases[alias.asname] = alias.name
                        else:
                            # ``import numpy.random`` binds the *root* name.
                            head = alias.name.split(".")[0]
                            aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module in ("numpy", "numpy.random", "random"):
                    for alias in node.names:
                        members[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return aliases, members

    # -- the check ----------------------------------------------------------
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        display = module.posix_display
        if any(display.endswith(allowed) for allowed in self.allowed_files):
            return
        aliases, members = self._import_maps(module.tree)
        if not aliases and not members:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._resolve(node.func, aliases, members)
            if target is None:
                continue
            message = self._verdict(target, node)
            if message is not None:
                yield self.finding(module, node, message)

    @staticmethod
    def _resolve(func: ast.AST, aliases: Dict[str, str], members: Dict[str, str]):
        """The canonical dotted name of the called object, if trackable."""
        name = dotted_name(func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        if head in aliases:
            return aliases[head] + ("." + rest if rest else "")
        if head in members:
            # ``from numpy import random`` / ``from random import shuffle``:
            # the member itself may be a module carrying further attributes.
            return members[head] + ("." + rest if rest else "")
        return None

    @staticmethod
    def _verdict(target: str, call: ast.Call):
        """The violation message for calling ``target``, or ``None`` if fine."""
        argless = not call.args and not call.keywords
        if target.startswith("numpy.random."):
            attribute = target[len("numpy.random."):]
            if "." in attribute or attribute in _SAFE_ATTRIBUTES:
                return None
            if attribute in _ENTROPY_CONSTRUCTORS:
                if argless:
                    return (
                        f"argless np.random.{attribute}() draws fresh OS entropy and "
                        "breaks workers=1 == workers=N determinism; derive child seeds "
                        "with repro._rng.spawn_seeds or pass explicit entropy"
                    )
                return None
            return (
                f"np.random.{attribute}(...) uses the hidden global NumPy RNG; "
                "accept an rng argument and thread a Generator through "
                "repro._rng.resolve_rng instead"
            )
        if target == "random.Random":
            if argless:
                return (
                    "argless random.Random() seeds from OS entropy; pass an explicit "
                    "seed (or use numpy Generators threaded via repro._rng)"
                )
            return None
        if target == "random.SystemRandom":
            return (
                "random.SystemRandom() is inherently nondeterministic; "
                "thread a seeded numpy Generator via repro._rng instead"
            )
        if target.startswith("random."):
            attribute = target[len("random."):]
            if "." in attribute or attribute[:1].isupper():
                return None
            return (
                f"random.{attribute}(...) uses the stdlib's hidden global Random "
                "instance; thread a seeded numpy Generator via repro._rng instead"
            )
        return None
