"""REP002 / REP003 — lock discipline and reserve→commit pairing.

**REP002** is a lightweight intra-class race detector.  A class that creates
a lock on ``self`` (``self._lock = threading.Lock()``, an ``RLock``, or a
dataclass field annotated as one) is declaring that some of its state is
shared across threads.  The *protected set* is every ``self.<attr>`` that is
**written** outside the constructor-like methods — plain assignment,
augmented assignment, subscript stores (``self._d[k] = v``) and calls to
known mutating methods (``append``/``pop``/``clear``/...).  Every access
(read or write) to a protected attribute must then happen

* lexically inside ``with self.<lock>:``, or
* in a method whose docstring declares ``Caller must hold self.<lock>.``
  (the lock is taken upstream — the docstring is the contract), or
* in a constructor-like method (``__init__``, ``__post_init__``,
  ``__getstate__``/``__setstate__``, ``__del__``) where no second thread
  can hold a reference yet / anymore.

Anything else is a data race waiting for a scheduler to find it, or — if
genuinely benign (a monitoring read of an atomic int) — a documented
exception: suppress the exact line with ``# repro: ignore[REP002]`` and say
why.

**REP003** guards the service's atomic budget accounting: every call path
that calls ``BudgetManager.reserve`` must reach ``commit`` (or ``cancel`` /
``release``) on every non-raising exit, otherwise the reservation leaks and
the budget is permanently smaller than the ledger says.  The check is
interprocedural within a module: a function that reserves is clean if it —
or any same-class method / same-module function it calls, transitively —
commits or cancels, or if it returns the reservation to its caller
(ownership transfer).  A reservation whose result is discarded outright is
always a leak.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding

__all__ = ["LockDisciplineRule", "ReserveCommitRule"]

#: Methods whose self-attribute writes do not make an attribute "protected"
#: and whose accesses are exempt: no concurrent alias can exist yet (or, for
#: __del__, anymore), and pickling never runs concurrently with use.
_CONSTRUCTOR_METHODS = {
    "__init__",
    "__post_init__",
    "__new__",
    "__init_subclass__",
    "__getstate__",
    "__setstate__",
    "__del__",
}

#: Method names that mutate their receiver in place: a call
#: ``self.attr.append(...)`` counts as a write to ``attr``.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "move_to_end",
    "sort",
    "reverse",
}

_CALLER_HOLDS_RE = re.compile(r"(?i)caller.{0,40}?must\s+(?:be\s+holding|hold)")

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _store_roots(target: ast.AST) -> Iterator[str]:
    """Self-attributes a statement target writes, including ``self.a[k] = v``."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _store_roots(element)
        return
    if isinstance(target, ast.Starred):
        yield from _store_roots(target.value)
        return
    if isinstance(target, ast.Subscript):
        target = target.value
    attr = _self_attr(target)
    if attr is not None:
        yield attr


class LockDisciplineRule(Rule):
    rule_id = "REP002"
    description = (
        "lock discipline: attributes of a class that creates self-locks must "
        "be accessed under 'with self.<lock>:' or in 'Caller must hold' methods"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    # -- lock detection -----------------------------------------------------
    @staticmethod
    def _is_lock_factory(call: ast.AST) -> bool:
        if not isinstance(call, ast.Call):
            return False
        name = dotted_name(call.func)
        return name in ("threading.Lock", "threading.RLock", "Lock", "RLock")

    def _lock_attrs(self, cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for statement in cls.body:
            # Dataclass style: ``_lock: threading.RLock = field(...)``.
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                annotation = ast.dump(statement.annotation)
                if "Lock" in annotation:
                    locks.add(statement.target.id)
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and self._is_lock_factory(node.value):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        locks.add(attr)
        return locks

    # -- protected-attribute collection -------------------------------------
    def _written_attrs(self, method: ast.AST) -> Set[str]:
        written: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    written.update(_store_roots(target))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                written.update(_store_roots(node.target))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                ):
                    attr = _self_attr(func.value)
                    if attr is not None:
                        written.add(attr)
        return written

    @staticmethod
    def _caller_holds(method: ast.AST, locks: Set[str]) -> bool:
        docstring = ast.get_docstring(method, clean=False) or ""
        return bool(_CALLER_HOLDS_RE.search(docstring)) and any(
            lock in docstring for lock in locks
        )

    # -- the per-class check -------------------------------------------------
    def _check_class(self, module: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        locks = self._lock_attrs(cls)
        if not locks:
            return
        methods = [node for node in cls.body if isinstance(node, _FunctionNode)]
        protected: Set[str] = set()
        for method in methods:
            if method.name in _CONSTRUCTOR_METHODS:
                continue
            protected.update(self._written_attrs(method))
        protected -= locks
        if not protected:
            return
        for method in methods:
            if method.name in _CONSTRUCTOR_METHODS:
                continue
            if self._caller_holds(method, locks):
                continue
            yield from self._check_method(module, cls, method, locks, protected)

    def _check_method(
        self,
        module: ModuleContext,
        cls: ast.ClassDef,
        method: ast.AST,
        locks: Set[str],
        protected: Set[str],
    ) -> Iterator[Finding]:
        lock_label = " / ".join(f"self.{name}" for name in sorted(locks))

        def visit(node: ast.AST, guarded: bool) -> Iterator[Finding]:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                takes_lock = any(
                    _self_attr(item.context_expr) in locks for item in node.items
                )
                for item in node.items:
                    yield from visit(item.context_expr, guarded)
                    if item.optional_vars is not None:
                        yield from visit(item.optional_vars, guarded)
                for child in node.body:
                    yield from visit(child, guarded or takes_lock)
                return
            attr = _self_attr(node)
            if attr is not None and attr in protected and not guarded:
                yield self.finding(
                    module,
                    node,
                    f"'self.{attr}' is lock-protected state of {cls.name} but is "
                    f"accessed outside 'with {lock_label}:'; guard it, or document "
                    f"'Caller must hold {lock_label}.' in the method docstring if "
                    "the lock is held upstream",
                )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, guarded)

        for statement in method.body:
            yield from visit(statement, False)


class ReserveCommitRule(Rule):
    rule_id = "REP003"
    description = (
        "budget pairing: every call path through .reserve(...) must reach "
        ".commit(...) or .cancel(...)/.release(...) on non-raising exits"
    )

    #: Attribute-call names that settle an outstanding reservation.
    _RESOLVERS = ("commit", "cancel", "release")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        functions = self._collect(module.tree)
        resolved = self._fixpoint(functions)
        for key, info in functions.items():
            for node in info["discarded"]:
                yield self.finding(
                    module,
                    node,
                    "the Reservation returned by .reserve(...) is discarded; it can "
                    "never be committed or cancelled, permanently shrinking the "
                    "grantable budget",
                )
            if not info["reserves"]:
                continue
            if key in resolved:
                continue
            for node in info["reserves"]:
                yield self.finding(
                    module,
                    node,
                    f"{key} calls .reserve(...) but no call path out of it reaches "
                    ".commit(...), .cancel(...) or .release(...) — a refused "
                    "estimator or early return leaks the reservation (hold it in a "
                    "try/finally, or hand it to a helper that settles it)",
                )

    # -- call-graph construction --------------------------------------------
    def _collect(self, tree: ast.Module) -> Dict[str, dict]:
        functions: Dict[str, dict] = {}
        module_functions = {
            node.name for node in tree.body if isinstance(node, _FunctionNode)
        }

        def scan(owner: Optional[str], function: ast.AST) -> None:
            key = f"{owner}.{function.name}" if owner else function.name
            if function.name == "reserve":
                # The definition of reserve itself is the protocol's producer,
                # not a consumer; analysing its body would self-flag wrappers.
                return
            info = {
                "reserves": [],
                "discarded": [],
                "resolves": False,
                "calls": set(),
            }
            escaping = self._escaping_calls(function)
            statements: List[ast.AST] = list(ast.walk(function))
            for node in statements:
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Attribute):
                    if func.attr == "reserve":
                        if id(node) in escaping:
                            continue
                        info["reserves"].append(node)
                    elif func.attr in self._RESOLVERS:
                        info["resolves"] = True
                    elif _self_attr(func) == func.attr and owner:
                        pass  # unreachable; kept for clarity
                    if _self_attr(func) is not None and owner:
                        info["calls"].add(f"{owner}.{func.attr}")
                elif isinstance(func, ast.Name) and func.id in module_functions:
                    info["calls"].add(func.id)
            # An Expr statement whose value is a reserve call discards the
            # Reservation outright — flag those separately and unconditionally.
            for node in statements:
                if (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "reserve"
                ):
                    info["discarded"].append(node.value)
                    if node.value in info["reserves"]:
                        info["reserves"].remove(node.value)
            functions[key] = info

        for node in tree.body:
            if isinstance(node, _FunctionNode):
                scan(None, node)
            elif isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, _FunctionNode):
                        scan(node.name, child)
        return functions

    @staticmethod
    def _escaping_calls(function: ast.AST) -> Set[int]:
        """ids of reserve Call nodes whose result is returned or yielded.

        Returning the Reservation transfers settlement responsibility to the
        caller — the pattern of thin wrappers over ``BudgetManager.reserve``.
        """
        escaping: Set[int] = set()
        for node in ast.walk(function):
            if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                for sub in ast.walk(node.value):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "reserve"
                    ):
                        escaping.add(id(sub))
        return escaping

    @staticmethod
    def _fixpoint(functions: Dict[str, dict]) -> Set[str]:
        """Keys whose call graph (transitively) reaches a resolver call."""
        resolved = {key for key, info in functions.items() if info["resolves"]}
        changed = True
        while changed:
            changed = False
            for key, info in functions.items():
                if key in resolved:
                    continue
                if any(callee in resolved for callee in info["calls"]):
                    resolved.add(key)
                    changed = True
        return resolved
