"""REP004 / REP005 / REP007 — estimator-spec and front-end conformance.

**REP004** makes the budget-relevant parts of an estimator spec explicit at
the registration site.  ``EstimatorSpec`` has defaults (``reservation=1.0``,
``min_records=8``) that are convenient in tests but dangerous in the
registry: an estimator that silently inherits a reservation factor spends
budget the author never reasoned about, and a missing ``min_records`` lets
tiny datasets through to estimators whose accuracy guarantees assume more.
Every ``@register_estimator(...)`` / direct ``EstimatorSpec(...)``
registration must therefore spell out ``reservation=`` and ``min_records=``,
and every numeric ``ParamField`` must carry at least one of ``minimum=`` /
``maximum=`` so the HTTP validator can reject out-of-range parameters
before any budget is reserved.

**REP005** enforces the no-traceback contract of the serving front ends: a
request-handling entry point (``do_GET``/``do_POST``-style methods in
``service/http.py``, ``_handle_connection`` in ``service/aio.py``) must wrap
its body in a broad ``except`` that maps the failure to a structured error
document.  An uncaught exception in a handler thread kills the connection
with a raw traceback — and in the threaded server, leaks the failure mode to
the client instead of the audit log.

**REP007** enforces the sketch contract: a runner registered with
``needs=("sorted", ...)`` promised the service it reads the dataset's cached
sorted sketch, so the registry pays for that sort exactly once at
registration time.  A ``np.sort(data)`` (or in-place ``data.sort()``) on the
runner's data argument silently re-pays the n·log n per query — the
declaration and the body disagree, and the cold-path speedup the
declaration bought is lost.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding

__all__ = ["EstimatorSpecRule", "FrontEndContainmentRule", "SketchContractRule"]

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)

#: ParamField types that are enumerations, not numbers — bounds make no sense.
_UNBOUNDED_PARAM_TYPES = {"levels", "str", "string", "bool"}


def _keyword_names(call: ast.Call) -> set:
    return {kw.arg for kw in call.keywords if kw.arg is not None}


def _has_double_star(call: ast.Call) -> bool:
    return any(kw.arg is None for kw in call.keywords)


class EstimatorSpecRule(Rule):
    rule_id = "REP004"
    description = (
        "estimator specs must declare reservation= and min_records= "
        "explicitly and bound every numeric ParamField"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            if tail in ("register_estimator", "EstimatorSpec"):
                yield from self._check_spec(module, node, tail)
            elif tail == "ParamField":
                yield from self._check_param(module, node)

    def _check_spec(
        self, module: ModuleContext, call: ast.Call, label: str
    ) -> Iterator[Finding]:
        if _has_double_star(call):
            # ``EstimatorSpec(**adapter_kwargs)`` — an adapter layer owns the
            # defaults; its own source is where explicitness is checked.
            return
        keywords = _keyword_names(call)
        for required in ("reservation", "min_records"):
            if required not in keywords:
                yield self.finding(
                    module,
                    call,
                    f"{label}(...) omits {required}=; budget-relevant spec fields "
                    "must be explicit at the registration site, not inherited "
                    "from EstimatorSpec defaults",
                )

    def _check_param(self, module: ModuleContext, call: ast.Call) -> Iterator[Finding]:
        keywords = _keyword_names(call)
        if _has_double_star(call):
            return
        param_type = self._literal_keyword(call, "type")
        if isinstance(param_type, str) and param_type in _UNBOUNDED_PARAM_TYPES:
            return
        if "minimum" not in keywords and "maximum" not in keywords:
            name = self._literal_keyword(call, "name")
            if name is None and call.args:
                first = call.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    name = first.value
            label = f"ParamField '{name}'" if name else "ParamField"
            yield self.finding(
                module,
                call,
                f"{label} declares no minimum= or maximum=; numeric request "
                "parameters must be range-validated before any budget is "
                "reserved",
            )

    @staticmethod
    def _literal_keyword(call: ast.Call, name: str):
        for kw in call.keywords:
            if kw.arg == name and isinstance(kw.value, ast.Constant):
                return kw.value.value
        return None


class SketchContractRule(Rule):
    rule_id = "REP007"
    description = (
        "runners declaring needs=('sorted', ...) must read the cached "
        "sketch instead of re-sorting their data argument"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, _FunctionNode):
                continue
            if not self._declares_sorted(node):
                continue
            param = self._data_param(node)
            if param is not None:
                yield from self._check_body(module, node, param)

    @staticmethod
    def _declares_sorted(function: ast.AST) -> bool:
        """``@register_estimator(..., needs=(...'sorted'...))`` on this def?"""
        for decorator in function.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            name = dotted_name(decorator.func)
            if name is None or name.rsplit(".", 1)[-1] != "register_estimator":
                continue
            for kw in decorator.keywords:
                if kw.arg != "needs" or not isinstance(
                    kw.value, (ast.Tuple, ast.List)
                ):
                    continue
                for element in kw.value.elts:
                    if (
                        isinstance(element, ast.Constant)
                        and element.value == "sorted"
                    ):
                        return True
        return False

    @staticmethod
    def _data_param(function: ast.AST) -> Optional[str]:
        """The runner's data argument: its first positional parameter."""
        args = function.args
        ordered = list(args.posonlyargs) + list(args.args)
        return ordered[0].arg if ordered else None

    def _check_body(
        self, module: ModuleContext, function: ast.AST, param: str
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or not name.endswith(".sort"):
                continue
            prefix = name[: -len(".sort")]
            if prefix in ("np", "numpy"):
                operands = list(node.args) + [kw.value for kw in node.keywords]
                if any(self._references(operand, param) for operand in operands):
                    yield self.finding(
                        module,
                        node,
                        f"runner declares needs=('sorted', ...) but re-sorts "
                        f"its data argument '{param}' with {name}(); read the "
                        "DatasetView's cached sketch (.sorted_values) the "
                        "declaration already paid for",
                    )
            elif prefix == param or prefix.startswith(param + "."):
                yield self.finding(
                    module,
                    node,
                    f"runner declares needs=('sorted', ...) but calls "
                    f"{name}() on its data argument; datasets are immutable "
                    "inputs — read the DatasetView's cached sketch "
                    "(.sorted_values) instead",
                )

    @staticmethod
    def _references(expr: ast.AST, param: str) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id == param
            for node in ast.walk(expr)
        )


class FrontEndContainmentRule(Rule):
    rule_id = "REP005"
    description = (
        "front-end request handlers must wrap their body in a broad except "
        "mapping failures to a structured error document"
    )

    #: (path suffix, predicate over method name) pairs defining entry points.
    _SCOPES: Tuple[Tuple[str, str], ...] = (
        ("service/http.py", "do_"),
        ("service/aio.py", "_handle_connection"),
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        display = module.posix_display
        prefixes = [
            prefix for suffix, prefix in self._SCOPES if display.endswith(suffix)
        ]
        if not prefixes:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, _FunctionNode):
                continue
            if not any(node.name.startswith(prefix) for prefix in prefixes):
                continue
            if not self._is_contained(node):
                yield self.finding(
                    module,
                    node,
                    f"request handler '{node.name}' is not wrapped in a broad "
                    "except; an uncaught exception here returns a raw traceback "
                    "to the client instead of a structured error document",
                )

    @classmethod
    def _is_contained(cls, function: ast.AST) -> bool:
        """True when the handler body is one top-level try with a broad handler.

        Leading docstrings and trivial setup (assignments, constants) before
        the try are tolerated; real request work outside it is not.
        """
        body = list(function.body)
        # Skip a docstring expression.
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            body = body[1:]
        while body and isinstance(body[0], (ast.Assign, ast.AnnAssign)):
            body = body[1:]
        if len(body) != 1 or not isinstance(body[0], ast.Try):
            return False
        return any(cls._is_broad_handler(h) for h in body[0].handlers)

    @staticmethod
    def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
        def broad(expr: Optional[ast.AST]) -> bool:
            if expr is None:  # bare except
                return True
            if isinstance(expr, ast.Tuple):
                return any(broad(element) for element in expr.elts)
            name = dotted_name(expr)
            return name in ("Exception", "BaseException")

        if not broad(handler.type):
            return False
        # ``except Exception: raise`` contains nothing.
        if len(handler.body) == 1 and isinstance(handler.body[0], ast.Raise):
            raised = handler.body[0]
            if raised.exc is None:
                return False
        return True
