"""REP006 — audit-trail coverage of budget and cache touch-points.

The privacy audit log (:mod:`repro.obs.audit`) is only tamper-*evident* for
events that were written in the first place: a code path that charges the
budget ledger or serves a cached answer without emitting an audit record is
invisible to ``repro audit verify`` and breaks the replay's
bit-for-bit-ledger guarantee silently.  This rule pins that invariant in the
service layer: any function under ``repro/service/`` that

* **mutates a privacy budget** — calls ``reserve``/``commit``/``cancel`` on
  a receiver whose dotted path mentions ``budget`` — or
* **serves from the answer cache** — calls ``get``/``peek`` on a receiver
  whose dotted path mentions ``cache``

must emit an audit event itself or reach (directly or transitively through
same-module helpers) a call whose dotted name mentions ``audit`` —
``self._audit_event(...)``, ``audit.record(...)`` and
``wire.audit_rate_limit(...)`` all qualify.

``budget.peek`` is deliberately out of scope: it is a zero-side-effect
admission probe that neither charges the ledger nor releases an answer.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding

__all__ = ["AuditCoverageRule"]

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)
_ScopeNode = _FunctionNode + (ast.Lambda,)


def _body_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """The nodes belonging to ``function`` itself, not to nested defs."""
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _ScopeNode):
            stack.extend(ast.iter_child_nodes(node))


class _FunctionInfo:
    __slots__ = ("node", "touches", "audits", "callees")

    def __init__(self, node: ast.AST):
        self.node = node
        #: ``(call node, what, dotted call)`` per budget/cache touch.
        self.touches: List[Tuple[ast.AST, str, str]] = []
        self.audits = False
        self.callees: Set[str] = set()


class AuditCoverageRule(Rule):
    rule_id = "REP006"
    description = (
        "service functions that mutate a privacy budget or serve from the "
        "answer cache must emit (or reach) an audit event"
    )

    #: Only the serving layer is in scope; estimators and the engine never
    #: see budgets or caches.
    _SCOPE = "repro/service/"
    _BUDGET_MUTATORS = frozenset({"reserve", "commit", "cancel"})
    _CACHE_SERVERS = frozenset({"get", "peek"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if self._SCOPE not in module.posix_display:
            return
        infos: Dict[str, _FunctionInfo] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, _FunctionNode):
                # Same-name collisions (methods of sibling classes) merge into
                # one conservative entry; the fixpoint only widens reachability.
                info = infos.setdefault(node.name, _FunctionInfo(node))
                self._analyse(node, info)

        reaches = {name: info.audits for name, info in infos.items()}
        changed = True
        while changed:
            changed = False
            for name, info in infos.items():
                if reaches[name]:
                    continue
                if any(reaches.get(callee, False) for callee in info.callees):
                    reaches[name] = True
                    changed = True

        for name in sorted(infos):
            info = infos[name]
            if reaches[name]:
                continue
            for call, what, label in info.touches:
                yield self.finding(
                    module,
                    call,
                    f"'{name}' touches the {what} ({label}) but never emits "
                    "an audit event (directly or via a helper in this "
                    "module); unaudited privacy events cannot be verified "
                    "or replayed",
                )

    def _analyse(self, function: ast.AST, info: _FunctionInfo) -> None:
        for node in _body_nodes(function):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            segments = name.split(".")
            if any("audit" in segment.lower() for segment in segments):
                info.audits = True
                continue
            tail = segments[-1]
            receiver = segments[:-1]
            if tail in self._BUDGET_MUTATORS and any(
                "budget" in segment.lower() for segment in receiver
            ):
                info.touches.append((node, "privacy budget", f"{name}()"))
            elif tail in self._CACHE_SERVERS and any(
                "cache" in segment.lower() for segment in receiver
            ):
                info.touches.append((node, "answer cache", f"{name}()"))
            info.callees.add(tail)
