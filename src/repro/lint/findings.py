"""The finding model shared by every lint rule and renderer.

A :class:`Finding` is one concrete violation: which file, which line, which
rule, how severe, and a message precise enough that the fix (or the
justification for a ``# repro: ignore[RULE-ID]`` suppression) is obvious.
Findings are value objects — rules yield them, the runner filters and sorts
them, renderers serialise them — so they carry no behaviour beyond JSON
conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Finding", "SEVERITIES", "PARSE_RULE_ID"]

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning")

#: Pseudo rule id attached to files the linter cannot parse.  It behaves like
#: any other rule for --select/--ignore purposes but has no Rule class: a file
#: that does not parse cannot be analysed, which is itself a finding.
PARSE_RULE_ID = "REP000"


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at a specific source location.

    The field order (file, line, rule_id, ...) doubles as the sort order, so
    reports are stable across runs and rule-execution order.
    """

    file: str
    line: int
    rule_id: str
    severity: str
    message: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} [{self.severity}] {self.message}"
