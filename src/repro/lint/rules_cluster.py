"""REP008: the cluster tier must not own or drive budget ledgers.

In a ``repro.cluster`` deployment exactly one process — the budget
coordinator — holds the :class:`~repro.service.registry.BudgetManager` for
every joint budget group; shards reach it through the line-delimited RPC
and the router holds no budget at all.  A second ledger anywhere in the
tier would silently fork the accounting: two processes could each admit
against their own copy of "remaining" and jointly overspend the cap the
operator configured.

REP008 therefore bans, in any module under ``repro/cluster/`` except
``coordinator.py`` (the one legitimate owner):

* constructing a ``BudgetManager`` (any call whose final name segment is
  exactly ``BudgetManager``);
* importing ``BudgetManager`` from :mod:`repro.service.registry` or
  :mod:`repro.service` (the import is the gateway to the constructor);
* calling the ledger-mutating protocol methods — ``.reserve(...)``,
  ``.commit(...)``, ``.cancel(...)``, ``.rotate_analyst_budgets(...)`` —
  as *attribute* calls.  The RPC client's string ops
  (``client.call("reserve", ...)``) are the sanctioned spelling: they
  land in the coordinator, under its lock, against the one real ledger.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.base import ModuleContext, Rule, dotted_name
from repro.lint.findings import Finding

__all__ = ["ClusterBudgetIsolationRule"]

#: Attribute calls that move a ledger (the BudgetManager mutation protocol).
_MUTATORS = frozenset({"reserve", "commit", "cancel", "rotate_analyst_budgets"})

#: Modules whose ``BudgetManager`` export is the real (local-ledger) class.
_LEDGER_MODULES = frozenset({"repro.service.registry", "repro.service"})


class ClusterBudgetIsolationRule(Rule):
    """Only the coordinator may construct or mutate a ``BudgetManager``."""

    rule_id = "REP008"
    description = (
        "code under repro/cluster/ (except coordinator.py) must not "
        "construct or mutate a BudgetManager — the coordinator owns the "
        "only ledger"
    )

    def _in_scope(self, module: ModuleContext) -> bool:
        display = module.posix_display
        return "repro/cluster/" in display and not display.endswith(
            "/coordinator.py"
        )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in _LEDGER_MODULES:
                    for alias in node.names:
                        if alias.name == "BudgetManager":
                            yield self.finding(
                                module, node,
                                "cluster code imports BudgetManager from "
                                f"{node.module}: only the coordinator process "
                                "may hold a group ledger — speak to it over "
                                "the RPC client instead",
                            )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.split(".")[-1] == "BudgetManager":
                    yield self.finding(
                        module, node,
                        f"cluster code constructs {name}(...): a second "
                        "ledger in the tier forks the accounting and can "
                        "jointly overspend the cap — the coordinator owns "
                        "the only BudgetManager",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                ):
                    yield self.finding(
                        module, node,
                        f"cluster code calls .{node.func.attr}(...) — a "
                        "ledger-mutating BudgetManager protocol method; "
                        "route it through the coordinator RPC "
                        f'(client.call("{node.func.attr}", ...)) so '
                        "reserve→commit stays atomic cluster-wide",
                    )
