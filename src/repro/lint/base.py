"""Rule framework: module context, suppression parsing, and the Rule base.

Every rule is a class with a ``rule_id``, a one-line ``description`` and a
``check(module)`` generator yielding :class:`~repro.lint.findings.Finding`
objects.  Rules see a :class:`ModuleContext` — the parsed AST plus the raw
source and the per-line suppression table — and never touch the filesystem
themselves, so fixture tests can lint in-memory snippets directly.

Suppression syntax
------------------
A finding is silenced by a comment **on the exact line it is reported at**::

    value = self._closed  # repro: ignore[REP002] monitoring read, benign race

Multiple ids separate with commas (``# repro: ignore[REP001,REP002]``) and
``# repro: ignore[*]`` silences every rule on that line.  Suppressions are
deliberate, reviewed exceptions: the comment is the documentation of *why*
the invariant does not apply there, and the runner reports them separately
so they stay visible.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Set

from repro.lint.findings import Finding

__all__ = ["ModuleContext", "Rule", "parse_suppressions"]

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_*,\s]*)\]")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule ids (``"*"`` = all rules).

    Comments are located with :mod:`tokenize` so a ``# repro: ignore[...]``
    inside a string literal is never mistaken for a suppression; on files
    that fail to tokenize (the parse error is reported separately) a plain
    per-line scan is the best effort left.
    """
    table: Dict[int, Set[str]] = {}

    def record(line: int, spec: str) -> None:
        ids = {part.strip().upper() for part in spec.split(",") if part.strip()}
        if ids:
            table.setdefault(line, set()).update(ids)

    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                match = _SUPPRESS_RE.search(token.string)
                if match:
                    record(token.start[0], match.group(1))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        for number, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                record(number, match.group(1))
    return table


@dataclass
class ModuleContext:
    """One parsed source file as the rules see it."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: Path, display: Optional[str] = None) -> "ModuleContext":
        """Parse ``source``; raises :class:`SyntaxError` for unparseable files."""
        return cls(
            path=path,
            display=display if display is not None else str(path),
            source=source,
            tree=ast.parse(source, filename=str(path)),
            suppressions=parse_suppressions(source),
        )

    @property
    def posix_display(self) -> str:
        """Forward-slash display path (for suffix-based file scoping)."""
        return self.display.replace("\\", "/")

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self.suppressions.get(line)
        return bool(ids) and (rule_id.upper() in ids or "*" in ids)


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`rule_id` / :attr:`description` and implement
    :meth:`check`.  The runner applies suppression and ``--select/--ignore``
    filtering — rules simply yield every violation they see.
    """

    rule_id: str = "REP999"
    severity: str = "error"
    description: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` (or at an explicit line int)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            file=module.display,
            line=int(line),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
