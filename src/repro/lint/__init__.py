"""repro.lint — AST-based invariant checker for the repro codebase.

The serving stack's guarantees (bit-for-bit ``workers=1 == workers=N``
determinism, atomic reserve→commit budget accounting, lock-guarded service
state, the no-traceback front-end contract) are properties of the *source*,
not just of test outcomes.  This package machine-checks them:

========  ==============================================================
REP001    no global-RNG calls — thread Generators via :mod:`repro._rng`
REP002    lock discipline — self-lock classes guard their shared state
REP003    reserve→commit pairing — no leaked budget reservations
REP004    estimator specs declare reservation/min_records/param bounds
REP005    front-end handlers contain exceptions to error documents
REP006    budget/cache touch-points emit (or reach) an audit event
REP007    needs=("sorted",) runners must not re-sort their data argument
REP008    cluster tier never constructs/mutates a BudgetManager directly
REP000    (pseudo-rule) file does not parse
========  ==============================================================

Run it as ``repro lint [paths]`` (exit 0 clean / 1 findings / 2 internal
error); suppress an individual line with ``# repro: ignore[RULE-ID]`` plus a
comment explaining why the invariant does not apply there.  To add a rule,
subclass :class:`~repro.lint.base.Rule`, yield
:class:`~repro.lint.findings.Finding` objects from ``check(module)``, and
append an instance in :func:`~repro.lint.runner.default_rules`.
"""

from repro.lint.base import ModuleContext, Rule, parse_suppressions
from repro.lint.findings import Finding, PARSE_RULE_ID, SEVERITIES
from repro.lint.rules_cluster import ClusterBudgetIsolationRule
from repro.lint.rules_concurrency import LockDisciplineRule, ReserveCommitRule
from repro.lint.rules_determinism import GlobalRngRule
from repro.lint.rules_observability import AuditCoverageRule
from repro.lint.rules_service import (
    EstimatorSpecRule,
    FrontEndContainmentRule,
    SketchContractRule,
)
from repro.lint.runner import (
    DEFAULT_RULES,
    LintResult,
    default_rules,
    lint_paths,
    render_json,
    render_json_text,
    render_text,
)

__all__ = [
    "AuditCoverageRule",
    "ClusterBudgetIsolationRule",
    "DEFAULT_RULES",
    "EstimatorSpecRule",
    "Finding",
    "FrontEndContainmentRule",
    "GlobalRngRule",
    "LintResult",
    "LockDisciplineRule",
    "ModuleContext",
    "PARSE_RULE_ID",
    "ReserveCommitRule",
    "Rule",
    "SEVERITIES",
    "SketchContractRule",
    "default_rules",
    "lint_paths",
    "parse_suppressions",
    "render_json",
    "render_json_text",
    "render_text",
]
