"""File collection, rule execution, filtering, and report rendering.

:func:`lint_paths` is the single entry point the CLI and the tests share:
it expands the given paths (directories recurse over ``*.py``, skipping
hidden directories and ``__pycache__``), parses each file, runs every
selected rule, applies per-line suppressions, and returns a
:class:`LintResult` carrying both the active findings and the suppressed
ones — suppressions are reviewed exceptions and stay visible in reports.

Exit-code contract (enforced by the CLI): 0 when no active findings,
1 when there are findings, 2 on internal/usage error (unknown rule id,
unreadable path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import DomainError
from repro.lint.base import ModuleContext, Rule
from repro.lint.findings import Finding, PARSE_RULE_ID
from repro.lint.rules_cluster import ClusterBudgetIsolationRule
from repro.lint.rules_concurrency import LockDisciplineRule, ReserveCommitRule
from repro.lint.rules_determinism import GlobalRngRule
from repro.lint.rules_observability import AuditCoverageRule
from repro.lint.rules_service import (
    EstimatorSpecRule,
    FrontEndContainmentRule,
    SketchContractRule,
)

__all__ = [
    "DEFAULT_RULES",
    "LintResult",
    "lint_paths",
    "render_text",
    "render_json",
]

#: JSON report schema version.
REPORT_VERSION = 1


def default_rules() -> List[Rule]:
    """Fresh instances of the full ruleset, REP001..REP008."""
    return [
        GlobalRngRule(),
        LockDisciplineRule(),
        ReserveCommitRule(),
        EstimatorSpecRule(),
        FrontEndContainmentRule(),
        AuditCoverageRule(),
        SketchContractRule(),
        ClusterBudgetIsolationRule(),
    ]


DEFAULT_RULES: Tuple[str, ...] = tuple(
    rule.rule_id for rule in default_rules()
) + (PARSE_RULE_ID,)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise DomainError(f"lint path does not exist: {path}")
        for candidate in candidates:
            parts = candidate.parts
            if any(part == "__pycache__" or part.startswith(".") for part in parts[:-1]):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            files.append(candidate)
    return files


def _normalise_ids(
    ids: Optional[Iterable[str]], known: Set[str], flag: str
) -> Optional[Set[str]]:
    if ids is None:
        return None
    cleaned = {str(rule_id).strip().upper() for rule_id in ids if str(rule_id).strip()}
    unknown = cleaned - known
    if unknown:
        raise DomainError(
            f"unknown rule id(s) for {flag}: {', '.join(sorted(unknown))}; "
            f"known rules: {', '.join(sorted(known))}"
        )
    return cleaned


def lint_paths(
    paths: Sequence[object],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and return a :class:`LintResult`.

    ``select`` restricts the run to the given rule ids; ``ignore`` drops
    rules from whatever ``select`` left.  Unknown ids in either raise
    :class:`~repro.errors.DomainError` — a typo in a CI invocation must not
    silently lint nothing.
    """
    active_rules = list(rules) if rules is not None else default_rules()
    known = {rule.rule_id for rule in active_rules} | {PARSE_RULE_ID}
    selected = _normalise_ids(select, known, "--select")
    ignored = _normalise_ids(ignore, known, "--ignore") or set()

    def rule_enabled(rule_id: str) -> bool:
        if selected is not None and rule_id not in selected:
            return False
        return rule_id not in ignored

    result = LintResult()
    for file_path in _collect_files([Path(p) for p in paths]):
        result.files += 1
        display = str(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            module = ModuleContext.from_source(source, file_path, display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            if rule_enabled(PARSE_RULE_ID):
                line = getattr(exc, "lineno", None) or 1
                result.findings.append(
                    Finding(
                        file=display,
                        line=int(line),
                        rule_id=PARSE_RULE_ID,
                        severity="error",
                        message=f"file does not parse: {exc}",
                    )
                )
            continue
        emitted: Set[Finding] = set()
        for rule in active_rules:
            if not rule_enabled(rule.rule_id):
                continue
            for finding in rule.check(module):
                if finding in emitted:
                    continue
                emitted.add(finding)
                if module.is_suppressed(finding.line, finding.rule_id):
                    result.suppressed.append(finding)
                else:
                    result.findings.append(finding)
    result.findings.sort()
    result.suppressed.sort()
    return result


def render_text(result: LintResult) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    if result.suppressed:
        lines.append("")
        lines.append(f"suppressed ({len(result.suppressed)}):")
        lines.extend(f"  {finding.render()}" for finding in result.suppressed)
    noun = "file" if result.files == 1 else "files"
    if result.clean:
        lines.append(f"{result.files} {noun} checked: clean")
    else:
        count = len(result.findings)
        lines.append(
            f"{result.files} {noun} checked: "
            f"{count} finding{'s' if count != 1 else ''}"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> Dict[str, object]:
    """The JSON report document (schema version {REPORT_VERSION})."""
    by_rule: Dict[str, int] = {}
    for finding in result.findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    return {
        "version": REPORT_VERSION,
        "files": result.files,
        "findings": [finding.to_json() for finding in result.findings],
        "suppressed": [finding.to_json() for finding in result.suppressed],
        "summary": {
            "total": len(result.findings),
            "suppressed": len(result.suppressed),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }


def render_json_text(result: LintResult) -> str:
    return json.dumps(render_json(result), indent=2, sort_keys=False)
